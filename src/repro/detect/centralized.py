"""Baseline: the centralized checker process of Garg & Waldecker [7].

One checker actor receives every process's vector-clock snapshots and
runs the elimination algorithm online: it keeps one FIFO queue of
candidates per predicate process, eliminates any queue head that
happened before another head, and declares detection when all heads are
present and pairwise concurrent.

This is the algorithm the paper improves on: all ``O(n^2 m)`` work and
``O(n^2 m)`` bits of buffered snapshots land on a single process.  The
distributed token algorithm (experiment E7) matches its totals while
capping any one process at ``O(nm)``.
"""

from __future__ import annotations

from collections import deque

from repro.common.types import WORD_BITS
from repro.detect.base import DetectionReport, app_name
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.simulation.actors import Actor
from repro.simulation.kernel import Kernel
from repro.simulation.network import ChannelModel
from repro.simulation.replay import (
    CANDIDATE_KIND,
    END_OF_TRACE_KIND,
    FeedItem,
    SnapshotFeeder,
)
from repro.trace.computation import Computation
from repro.trace.cuts import Cut
from repro.trace.snapshots import vc_snapshots

__all__ = ["CheckerActor", "detect", "CHECKER_NAME"]

CHECKER_NAME = "checker"


class CheckerActor(Actor):
    """The single checker process.

    Candidate payloads are ``(slot, projected_vector)`` pairs.  The
    checker buffers candidates in per-slot queues (charged to its space
    gauge), eliminates dominated heads as snapshots arrive, and stops on
    the first consistent all-present head set — or once some slot is
    exhausted with its queue empty, when no satisfying cut can exist.
    """

    def __init__(self, n: int) -> None:
        super().__init__(CHECKER_NAME)
        self._n = n
        self.detected = False
        self.detected_cut: tuple[int, ...] | None = None
        self.detected_at: float | None = None
        self.eliminations = 0
        self.comparisons = 0

    def run(self):
        n = self._n
        queues: list[deque[tuple[int, ...]]] = [deque() for _ in range(n)]
        closed = [False] * n
        # Slots whose head changed and must be re-compared against all.
        pending: deque[int] = deque()
        in_pending = [False] * n

        def mark_pending(slot: int) -> None:
            if not in_pending[slot]:
                in_pending[slot] = True
                pending.append(slot)

        def hb(i: int, j: int) -> bool:
            # (i, head_i) happened before (j, head_j): Fidge-Mattern on
            # the projected vectors (own component is the interval index).
            return queues[i][0][i] <= queues[j][0][i]

        while True:
            msg = yield self.receive(CANDIDATE_KIND, END_OF_TRACE_KIND)
            if msg.kind == END_OF_TRACE_KIND:
                closed[msg.payload] = True
            else:
                slot, vector = msg.payload
                yield self.work(1)
                was_empty = not queues[slot]
                queues[slot].append(vector)
                self.metrics.adjust_space(self._n * WORD_BITS)
                if was_empty:
                    mark_pending(slot)
            # Drain the re-check queue: eliminate dominated heads.
            while pending:
                i = pending.popleft()
                in_pending[i] = False
                if not queues[i]:
                    continue
                for j in range(n):
                    if j == i or not queues[j]:
                        continue
                    yield self.work(2)
                    self.comparisons += 2
                    if hb(i, j):
                        loser = i
                    elif hb(j, i):
                        loser = j
                    else:
                        continue
                    queues[loser].popleft()
                    self.metrics.adjust_space(-self._n * WORD_BITS)
                    self.eliminations += 1
                    if queues[loser]:
                        mark_pending(loser)
                    if loser == i:
                        break
            # Verdicts.
            if any(closed[s] and not queues[s] for s in range(n)):
                return  # some slot can never supply a candidate again
            if all(queues[s] for s in range(n)):
                self.detected = True
                self.detected_cut = tuple(queues[s][0][s] for s in range(n))
                self.detected_at = self.now
                return


def detect(
    computation: Computation,
    wcp: WeakConjunctivePredicate,
    *,
    seed: int = 0,
    channel_model: ChannelModel | None = None,
    spacing: float = 1.0,
    observers: list | None = None,
    clock_backend: str = "list",
) -> DetectionReport:
    """Run the centralized checker on a recorded computation.

    ``clock_backend`` behaves as in :func:`repro.detect.token_vc.detect`.
    """
    wcp.check_against(computation.num_processes)
    pids = wcp.pids
    n = wcp.n
    kernel = Kernel(channel_model=channel_model, seed=seed, observers=observers)
    checker = CheckerActor(n)
    kernel.add_actor(checker)
    streams = vc_snapshots(computation, wcp.predicate_map(), clock_backend)
    for slot, pid in enumerate(pids):
        items = [
            FeedItem(
                payload=(slot, snap.vector.project(pids)),
                size_bits=n * WORD_BITS,
                time=snap.time,
            )
            for snap in streams[pid]
        ]
        feeder = _SlotFeeder(app_name(pid), CHECKER_NAME, items, slot, spacing)
        kernel.add_actor(feeder)
    sim = kernel.run()
    extras = {
        "comparisons": checker.comparisons,
        "eliminations": checker.eliminations,
    }
    if checker.detected:
        assert checker.detected_cut is not None
        return DetectionReport(
            detector="centralized",
            detected=True,
            cut=Cut(pids, checker.detected_cut),
            detection_time=checker.detected_at,
            sim=sim,
            metrics=kernel.metrics,
            extras=extras,
        )
    return DetectionReport(
        detector="centralized",
        detected=False,
        sim=sim,
        metrics=kernel.metrics,
        extras=extras,
    )


class _SlotFeeder(SnapshotFeeder):
    """A snapshot feeder whose end-of-trace marker names its slot.

    The checker multiplexes all processes on one mailbox, so the marker
    must say *which* stream ended.
    """

    def __init__(
        self,
        name: str,
        monitor: str,
        items: list[FeedItem],
        slot: int,
        spacing: float = 1.0,
    ) -> None:
        super().__init__(name, monitor, items, spacing)
        self._slot = slot

    def run(self):
        for item in self._items:
            if item.time is not None:
                if item.time > self.now:
                    yield self.sleep(item.time - self.now)
            else:
                yield self.sleep(self._spacing)
            yield self.send(
                self._monitor,
                item.payload,
                kind=CANDIDATE_KIND,
                size_bits=item.size_bits,
            )
        yield self.send(
            self._monitor, self._slot, kind=END_OF_TRACE_KIND, size_bits=1
        )
