"""Back-compat shim: the reliability layer is now stack layer 1.

The transport machinery lives in :mod:`repro.detect.stack.transport`;
import from :mod:`repro.detect.stack` in new code.  This module
re-exports the old names so existing imports keep working.
"""

import warnings

warnings.warn(
    "repro.detect.reliability is deprecated; import from "
    "repro.detect.stack instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.detect.stack.transport import *  # noqa: E402,F401,F403
from repro.detect.stack.transport import (  # noqa: E402,F401
    ACK_BITS,
    HALT_ACK_BITS,
    TOKEN_ACK_BITS,
    _FixedSchedule,
    _unit_draw,
)
