"""Reliability layer: loss-, duplication- and crash-tolerant transport.

The paper's protocols assume reliable channels and ever-live monitors;
this module supplies the machinery that lets the *hardened* variants of
``token_vc``, ``token_vc_multi`` and ``direct_dep`` survive the fault
model of :mod:`repro.simulation.faults` while still reporting **exactly
the first consistent cut** of the fault-free run:

* **Application -> monitor** traffic is sequence-numbered
  (:class:`Sequenced`), retransmitted by the :class:`ReliableFeeder` on
  ack timeout with exponential backoff, deduplicated and re-ordered by
  the monitor-side :class:`CandidateInbox`, and acknowledged
  cumulatively (one ack per stream in the fault-free case, not one per
  message — this is what keeps the hardened 0%-fault overhead low).
* **Token transfer** is hop-by-hop reliable: every token message is
  wrapped in a :class:`TokenFrame` carrying a monotonically increasing
  hop number; the receiver persists the highest hop seen, acks every
  frame immediately (duplicates are re-acked and discarded), and the
  sender retransmits its persisted copy until acked — a
  ``Receive(timeout=...)`` heartbeat with exponential backoff.  Token
  *regeneration* after a crash falls out of the same design: both
  endpoints of a transfer keep the frame in persisted local state, so
  whichever side survives (or restarts) re-injects it.
* **Termination** is a reliable halt: the declaring monitor retransmits
  ``halt`` until every peer (and every feeder) acks, with a bounded
  retry budget so a permanently-dead peer degrades the run instead of
  livelocking it.

Because actor attributes survive a kernel crash/restart (they model
persisted local state) and generator code between yields is atomic, the
hardened monitors are written as state machines over persisted
attributes: :meth:`~repro.simulation.actors.Actor.restart` re-enters
``run``, which resumes from wherever the persisted state says the
protocol was.

Retransmission is bounded by :class:`RetryPolicy.max_attempts`; under
any fault schedule with eventual delivery the bound is never reached
(each retry succeeds independently with the channel's delivery
probability), and without eventual delivery it converts a livelock into
a reported ``degraded`` outcome.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.types import WORD_BITS
from repro.detect.base import HALT_KIND, TOKEN_KIND
from repro.simulation.actors import Actor
from repro.simulation.replay import CANDIDATE_KIND, END_OF_TRACE_KIND, FeedItem

__all__ = [
    "CAND_ACK_KIND",
    "TOKEN_ACK_KIND",
    "HALT_ACK_KIND",
    "Sequenced",
    "TokenFrame",
    "Tagged",
    "RetryPolicy",
    "CandidateInbox",
    "ReliableFeeder",
    "ReliableInjector",
    "ReliableEndpoint",
]

# Message kinds introduced by the reliability layer.
CAND_ACK_KIND = "cand_ack"    # cumulative app-stream ack, monitor -> feeder
TOKEN_ACK_KIND = "token_ack"  # per-hop token transfer ack
HALT_ACK_KIND = "halt_ack"    # termination ack, peer -> declaring monitor

ACK_BITS = WORD_BITS
TOKEN_ACK_BITS = 2 * WORD_BITS  # (gid, hop)
HALT_ACK_BITS = 1


@dataclass(frozen=True, slots=True)
class Sequenced:
    """A sequence-numbered app->monitor payload (1-based, per feeder).

    The end-of-trace marker travels as the ``final`` item of the stream
    so that it, too, is retransmitted until acknowledged.
    """

    seq: int
    payload: object
    final: bool = False


@dataclass(frozen=True, slots=True)
class TokenFrame:
    """A token message wrapped for reliable hop-by-hop transfer.

    ``hop`` increases by one on every forward of the same logical token;
    ``gid`` distinguishes independent tokens (the multi-token algorithm
    runs one hop sequence per group).  ``(gid, hop)`` is the frame's
    identity for dedup and acks.
    """

    hop: int
    body: object
    gid: int = 0

    @property
    def key(self) -> tuple[int, int]:
        """The frame identity carried by acks."""
        return (self.gid, self.hop)


@dataclass(frozen=True, slots=True)
class Tagged:
    """A payload tagged with a request id, for exactly-once request/reply.

    Used by the hardened direct-dependence polls: a retransmitted poll
    carries the same tag, and the polled monitor replays its cached
    response instead of re-applying the state change.
    """

    tag: tuple
    payload: object


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Ack-timeout and exponential-backoff schedule for retransmissions.

    ``timeout(attempt)`` grows geometrically from ``base_timeout`` by
    ``factor`` up to ``cap``.  ``max_attempts`` bounds every retransmit
    loop so a permanently-unreachable peer yields a *degraded* run
    instead of a livelock.
    """

    base_timeout: float = 6.0
    factor: float = 2.0
    cap: float = 48.0
    max_attempts: int = 25

    def __post_init__(self) -> None:
        if self.base_timeout <= 0:
            raise ConfigurationError(
                f"base_timeout must be > 0, got {self.base_timeout}"
            )
        if self.factor < 1.0:
            raise ConfigurationError(f"factor must be >= 1, got {self.factor}")
        if self.cap < self.base_timeout:
            raise ConfigurationError("cap must be >= base_timeout")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")

    def timeout(self, attempt: int) -> float:
        """The ack timeout for retransmission round ``attempt`` (0-based)."""
        return min(self.cap, self.base_timeout * self.factor**attempt)


class CandidateInbox:
    """Dedup / re-order buffer for one monitor's sequenced app stream.

    Lives in a persisted attribute of the hardened monitor, so buffered
    candidates survive a crash even though the kernel mailbox is lost.
    """

    def __init__(self) -> None:
        self._received_upto = 0          # highest contiguous seq received
        self._pending: dict[int, tuple[Sequenced, int]] = {}
        self._queue: deque[tuple[object, int]] = deque()
        self.final_seq: int | None = None

    def accept(self, item: Sequenced, size_bits: int) -> bool:
        """Register an arrival; returns False for duplicates."""
        if item.seq <= self._received_upto or item.seq in self._pending:
            return False
        self._pending[item.seq] = (item, size_bits)
        while True:
            entry = self._pending.pop(self._received_upto + 1, None)
            if entry is None:
                break
            self._received_upto += 1
            got, bits = entry
            if got.final:
                self.final_seq = got.seq
            else:
                self._queue.append((got.payload, bits))
        return True

    def pop(self) -> tuple[object, int] | None:
        """The next in-order candidate ``(payload, size_bits)``, if any."""
        return self._queue.popleft() if self._queue else None

    @property
    def ack(self) -> int:
        """The cumulative ack value: highest contiguous seq received."""
        return self._received_upto

    @property
    def complete(self) -> bool:
        """Whether the whole stream (including end-of-trace) arrived."""
        return self.final_seq is not None and self._received_upto >= self.final_seq

    @property
    def exhausted(self) -> bool:
        """Whether the stream is complete *and* fully consumed."""
        return self.complete and not self._queue


class ReliableFeeder(Actor):
    """Crash/loss-tolerant replacement for ``SnapshotFeeder``.

    Pipelines the whole sequence-numbered stream at the recorded
    emission times, then waits for the monitor's cumulative ack,
    retransmitting the unacked suffix on timeout with exponential
    backoff.  Exits only when reliably halted by the winning monitor
    (or when the retry budget is exhausted — ``gave_up``).
    """

    def __init__(
        self,
        name: str,
        monitor: str,
        items: list[FeedItem],
        spacing: float = 1.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        super().__init__(name)
        if spacing <= 0:
            raise ConfigurationError(f"spacing must be > 0, got {spacing}")
        timed = [i.time for i in items if i.time is not None]
        if timed != sorted(timed):
            raise ConfigurationError("feed item times must be nondecreasing")
        self._monitor = monitor
        self._retry = retry or RetryPolicy()
        # (frame, kind, size_bits, emission_time)
        self._frames: list[tuple[Sequenced, str, int, float | None]] = [
            (
                Sequenced(i + 1, item.payload),
                CANDIDATE_KIND,
                item.size_bits + WORD_BITS,
                item.time,
            )
            for i, item in enumerate(items)
        ]
        self._frames.append(
            (
                Sequenced(len(items) + 1, None, final=True),
                END_OF_TRACE_KIND,
                1 + WORD_BITS,
                None,
            )
        )
        self._spacing = spacing
        self._acked = 0          # persisted: highest cumulative ack seen
        self.gave_up = False
        self.halted = False

    def run(self):
        if self.halted:
            # Restarted after being halted: the halt_ack may have been
            # lost along with the crashed mailbox, so answer halt
            # retransmissions instead of exiting into a dead letterbox.
            yield from self._relinger()
            return
        final_seq = len(self._frames)
        # Phase 1: first transmission, paced by the recorded trace times.
        # After a crash-restart already-acked frames are skipped; the
        # monitor's inbox dedups any the feeder re-sends.
        for frame, kind, bits, at in self._frames:
            if at is not None:
                if at > self.now:
                    yield self.sleep(at - self.now)
            elif not frame.final:
                yield self.sleep(self._spacing)
            if frame.seq <= self._acked:
                continue
            yield self.send(self._monitor, frame, kind=kind, size_bits=bits)
        # Phase 2: await the cumulative ack, retransmitting the suffix.
        attempt = 0
        while self._acked < final_seq:
            msg = yield self.receive_timeout(
                CAND_ACK_KIND,
                HALT_KIND,
                timeout=self._retry.timeout(attempt),
                description=f"{self.name} awaiting ack > {self._acked}",
            )
            if msg is None:
                attempt += 1
                if attempt > self._retry.max_attempts:
                    self.gave_up = True
                    break
                for frame, kind, bits, _ in self._frames[self._acked:]:
                    yield self.send(self._monitor, frame, kind=kind, size_bits=bits)
                continue
            if msg.corrupted:
                continue
            if msg.kind == HALT_KIND:
                yield from self._acknowledge_halt(msg.src)
                return
            if msg.payload > self._acked:
                self._acked = msg.payload
                attempt = 0
        # Phase 3: stream delivered (or given up) — wait to be halted so
        # late retransmission requests never hit a finished actor.
        while True:
            msg = yield self.receive(
                HALT_KIND, description=f"{self.name} awaiting halt"
            )
            if msg.corrupted:
                continue
            yield from self._acknowledge_halt(msg.src)
            return

    def _acknowledge_halt(self, halter: str):
        """Ack the halt, then linger briefly to re-ack retransmissions.

        The linger window exceeds the halter's maximum retransmission
        gap, so a lost ``halt_ack`` is always repaired before this actor
        exits (a finished actor could no longer answer).
        """
        self.halted = True
        yield self.send(halter, None, kind=HALT_ACK_KIND,
                        size_bits=HALT_ACK_BITS)
        yield from self._relinger()

    def _relinger(self):
        """Re-ack halt retransmissions until the channel goes quiet."""
        linger = self._retry.cap + self._retry.base_timeout
        while True:
            msg = yield self.receive_timeout(
                HALT_KIND,
                timeout=linger,
                description=f"{self.name} lingering after halt",
            )
            if msg is None:
                return
            if msg.corrupted:
                continue
            yield self.send(msg.src, None, kind=HALT_ACK_KIND,
                            size_bits=HALT_ACK_BITS)


class ReliableInjector(Actor):
    """Bootstraps a protocol by reliably delivering its first token frame.

    Retransmits until the destination's per-hop ack arrives; a
    destination that is down at injection time simply receives the frame
    after its restart (the paper's protocols start from the first
    monitor, so this is the crash-tolerant analogue of the plain
    ``_TokenInjector`` actors).
    """

    def __init__(
        self,
        dest: str,
        frame: TokenFrame,
        size_bits: int,
        retry: RetryPolicy | None = None,
    ) -> None:
        super().__init__("token-injector")
        self._dest = dest
        self._frame = frame
        self._size_bits = size_bits
        self._retry = retry or RetryPolicy()
        self._acked = False
        self.gave_up = False

    def run(self):
        attempt = 0
        while not self._acked:
            yield self.send(
                self._dest, self._frame, kind=TOKEN_KIND,
                size_bits=self._size_bits,
            )
            msg = yield self.receive_timeout(
                TOKEN_ACK_KIND,
                timeout=self._retry.timeout(attempt),
                description=f"{self.name} awaiting injection ack",
            )
            if msg is not None and not msg.corrupted:
                self._acked = True
                return
            attempt += 1
            if attempt > self._retry.max_attempts:
                self.gave_up = True
                return


class ReliableEndpoint:
    """Mixin giving a monitor actor the hardened transport behaviours.

    Subclasses must be :class:`~repro.simulation.actors.Actor` types and
    call :meth:`_init_reliability` from ``__init__``; they implement
    ``_dispatch(msg)`` (a generator returning ``"handled"`` or
    ``"halt"``) on top of :meth:`_dispatch_common`.

    All transport state lives in persisted attributes:

    ``_inbox``
        the :class:`CandidateInbox` for this monitor's app stream;
    ``_seen_hops``
        highest token hop accepted, per token ``gid``;
    ``_held``
        accepted-but-unprocessed token frames (almost always 0 or 1);
    ``_pending_out``
        un-acked outgoing frames, keyed by ``(gid, hop)``.
    """

    def _init_reliability(self, retry: RetryPolicy | None = None) -> None:
        self._retry = retry or RetryPolicy()
        self._inbox = CandidateInbox()
        self._seen_hops: dict[int, int] = {}
        self._held: deque[TokenFrame] = deque()
        self._pending_out: dict[tuple[int, int], tuple[str, str, TokenFrame, int]] = {}
        self._halting_targets: set[str] | None = None
        self.halted = False
        self.gave_up = False
        self.halt_incomplete = False

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def _snapshot_frame(self, frame: TokenFrame) -> TokenFrame:
        """Deep-enough copy of an accepted frame.

        The sender keeps the original for retransmission; the receiver
        mutates its own copy so retransmitted bytes stay pristine.
        """
        return frame

    def _on_token_accepted(self, frame: TokenFrame) -> None:
        """Called once per *new* accepted frame, before processing."""

    # ------------------------------------------------------------------
    # Common dispatch
    # ------------------------------------------------------------------
    def _dispatch_common(self, msg):
        """Handle transport-level kinds; returns a handling code.

        ``"handled"`` — consumed here; ``"halt"`` — a halt was received
        and acked, the caller must terminate; ``"unhandled"`` — a
        protocol-specific kind for the caller's ``_dispatch``.
        """
        if msg.kind in (CANDIDATE_KIND, END_OF_TRACE_KIND):
            yield from self._handle_app(msg)
            return "handled"
        if msg.kind == TOKEN_KIND:
            yield from self._handle_token_arrival(msg)
            return "handled"
        if msg.kind == TOKEN_ACK_KIND:
            if not msg.corrupted:
                self._pending_out.pop(msg.payload, None)
            return "handled"
        if msg.kind == HALT_KIND:
            if msg.corrupted:
                return "handled"  # the halter will retransmit
            self.halted = True
            yield self.send(msg.src, None, kind=HALT_ACK_KIND,
                            size_bits=HALT_ACK_BITS)
            return "halt"
        if msg.kind == HALT_ACK_KIND:
            return "handled"  # stale ack from an earlier halt wave
        return "unhandled"

    def _handle_app(self, msg):
        """Ingest a sequenced app message; ack duplicates and completion."""
        if msg.corrupted:
            return  # undetectable garbage: the feeder will retransmit
        item: Sequenced = msg.payload
        fresh = self._inbox.accept(item, msg.size_bits)
        if fresh and not item.final:
            self.metrics.adjust_space(msg.size_bits)
        if not fresh or self._inbox.complete:
            yield self.send(msg.src, self._inbox.ack, kind=CAND_ACK_KIND,
                            size_bits=ACK_BITS)

    def _handle_token_arrival(self, msg):
        """Dedup and immediately ack a token frame; hold new ones."""
        if msg.corrupted:
            return  # the previous holder will retransmit
        frame: TokenFrame = msg.payload
        if frame.hop <= self._seen_hops.get(frame.gid, 0):
            # Duplicate (or retransmission of an already-accepted hop):
            # re-ack so the sender stops, then discard.
            yield self.send(msg.src, frame.key, kind=TOKEN_ACK_KIND,
                            size_bits=TOKEN_ACK_BITS)
            return
        self._seen_hops[frame.gid] = frame.hop
        self._held.append(self._snapshot_frame(frame))
        self._on_token_accepted(frame)
        yield self.send(msg.src, frame.key, kind=TOKEN_ACK_KIND,
                        size_bits=TOKEN_ACK_BITS)

    # ------------------------------------------------------------------
    # Candidate consumption
    # ------------------------------------------------------------------
    def _next_candidate(self):
        """Yield until the next in-order candidate (or end of trace).

        Returns ``(payload, size_bits)``, or ``None`` once the stream is
        exhausted, or the string ``"halt"`` if the protocol was halted
        while waiting.
        """
        while True:
            entry = self._inbox.pop()
            if entry is not None:
                self.metrics.adjust_space(-entry[1])
                return entry
            if self._inbox.exhausted:
                return None
            msg = yield self.receive(
                description=f"{self.name} awaiting candidate"
            )
            code = yield from self._dispatch(msg)
            if code == "halt":
                return "halt"

    # ------------------------------------------------------------------
    # Outgoing transfers
    # ------------------------------------------------------------------
    def _begin_transfer(
        self, dest: str, frame: TokenFrame, size_bits: int, kind: str = TOKEN_KIND
    ) -> None:
        """Queue ``frame`` for reliable delivery to ``dest``."""
        self._pending_out[frame.key] = (dest, kind, frame, size_bits)

    def _drive_transfers(self):
        """Retransmit pending frames until all acked.

        Returns ``"ok"``, ``"halt"`` or ``"gave_up"``.  The first send
        of each frame happens here too, so a crash-restart naturally
        retransmits from persisted state.
        """
        attempt = 0
        while self._pending_out:
            for key in sorted(self._pending_out):
                dest, kind, frame, bits = self._pending_out[key]
                yield self.send(dest, frame, kind=kind, size_bits=bits)
            timeout = self._retry.timeout(attempt)
            while self._pending_out:
                msg = yield self.receive_timeout(
                    timeout=timeout,
                    description=f"{self.name} awaiting token ack",
                )
                if msg is None:
                    break
                code = yield from self._dispatch(msg)
                if code == "halt":
                    return "halt"
            else:
                return "ok"
            attempt += 1
            if attempt > self._retry.max_attempts:
                self.gave_up = True
                self._pending_out.clear()
                return "gave_up"
        return "ok"

    # ------------------------------------------------------------------
    # Reliable termination
    # ------------------------------------------------------------------
    def _reliable_halt(self, targets):
        """Broadcast halt and retransmit until every target acks.

        A concurrently-halting peer's own ``halt`` counts as its ack
        (both sides are terminating; neither needs the other alive).
        Bounded by the retry budget: unreachable targets are abandoned
        with ``halt_incomplete`` — *not* ``gave_up``, because the
        verdict was committed before halting began and an unfinished
        shutdown handshake cannot invalidate it.
        """
        if self._halting_targets is None:
            self._halting_targets = {t for t in targets if t != self.name}
        pending = self._halting_targets
        attempt = 0
        while pending:
            yield [
                self.send(t, None, kind=HALT_KIND, size_bits=1)
                for t in sorted(pending)
            ]
            timeout = self._retry.timeout(attempt)
            while pending:
                msg = yield self.receive_timeout(
                    timeout=timeout,
                    description=f"{self.name} halting {len(pending)} peers",
                )
                if msg is None:
                    break
                if msg.corrupted:
                    continue
                if msg.kind == HALT_ACK_KIND:
                    pending.discard(msg.src)
                    continue
                if msg.kind == HALT_KIND:
                    yield self.send(msg.src, None, kind=HALT_ACK_KIND,
                                    size_bits=HALT_ACK_BITS)
                    pending.discard(msg.src)
                    continue
                # Anything else is a stale retransmission needing a re-ack.
                yield from self._dispatch(msg)
            attempt += 1
            if attempt > self._retry.max_attempts:
                self.halt_incomplete = True
                return

    def _linger(self):
        """Answer straggler retransmissions briefly, then exit.

        Run after this endpoint's part in the protocol is over (halted,
        or done halting others): peers whose acks were lost are still
        retransmitting, and would otherwise retry into a finished actor
        until they exhausted their budgets.  The window exceeds any
        peer's maximum retransmission gap.
        """
        linger = self._retry.cap + self._retry.base_timeout
        while True:
            msg = yield self.receive_timeout(
                timeout=linger,
                description=f"{self.name} lingering after halt",
            )
            if msg is None:
                return
            yield from self._dispatch(msg)
