"""Strong conjunctive predicates: polynomial definitely(φ) detection.

The paper's companion line of work (Garg & Waldecker, *Detection of
Strong Unstable Predicates in Distributed Programs*) shows that
``definitely(l_1 ∧ … ∧ l_n)`` — every observation of the run passes
through a state where all clauses hold simultaneously — is decidable in
polynomial time for conjunctive predicates.  We implement it as the
natural complement to the paper's possibly-detectors.

**True intervals.**  For each process, the maximal runs of consecutive
local states in which its clause holds, with

* the *enter event* — the event producing the run's first state
  (``None`` when the clause holds initially), and
* the *exit event* — the event producing the first state after the run
  (``None`` when the run extends to the end of the trace).

**Unavoidable boxes.**  A choice of one true interval per process is
*unavoidable* iff every observation passes through a global state inside
all of them.  An observation can dodge the box iff some process ``j``
can exit its interval while another process ``i`` has not yet entered —
i.e. iff the cut "``j`` past its exit, ``i`` before its entry" is
consistent.  That cut is inconsistent exactly when

    enter(I_i)  →  exit(I_j)        (event-level happened-before)

so the box is unavoidable iff this holds for all ordered pairs (pairs
where ``enter`` is the initial state or ``exit`` never happens are
vacuously safe).

**Elimination.**  If ``enter(I_i) ↛ exit(I_j)``, then no later interval
of ``i`` helps either (its enter event is causally later on the same
process), so ``I_j`` can be discarded outright — the same queue-head
elimination shape as the paper's weak algorithm, giving O(n²·intervals)
work.  Definitely holds iff the elimination reaches a fully pairwise-
safe set of heads.

Validated exhaustively against the state-granularity lattice
(:mod:`repro.trace.state_lattice`) in the test suite.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.trace.causality import event_vector_clocks
from repro.trace.computation import Computation

__all__ = [
    "TrueInterval",
    "StrongReport",
    "true_intervals_states",
    "detect_definitely",
]


@dataclass(frozen=True, slots=True)
class StrongReport:
    """Outcome of a definitely(φ) run.

    Unlike possibly-detection there is no single witnessing cut: on
    success ``box`` maps each predicate pid to the (first_state,
    last_state) local-state range of its interval in the unavoidable
    box.
    """

    holds: bool
    box: dict[int, tuple[int, int]] | None
    eliminations: int
    comparisons: int
    reason: str = ""


@dataclass(frozen=True, slots=True)
class TrueInterval:
    """A maximal run of clause-true local states on one process.

    ``first_state``/``last_state`` are local-state indices;
    ``enter_event``/``exit_event`` are 0-based event indices (``None``
    at the trace boundaries).
    """

    pid: int
    first_state: int
    last_state: int
    enter_event: int | None
    exit_event: int | None


def true_intervals_states(
    computation: Computation, pid: int, clause
) -> list[TrueInterval]:
    """The clause's maximal true runs on ``pid``, in order."""
    states = computation.local_states(pid)
    values = [bool(clause(s)) for s in states]
    intervals: list[TrueInterval] = []
    start: int | None = None
    for idx, value in enumerate(values):
        if value and start is None:
            start = idx
        elif not value and start is not None:
            intervals.append(
                TrueInterval(
                    pid=pid,
                    first_state=start,
                    last_state=idx - 1,
                    enter_event=start - 1 if start > 0 else None,
                    exit_event=idx - 1,
                )
            )
            start = None
    if start is not None:
        intervals.append(
            TrueInterval(
                pid=pid,
                first_state=start,
                last_state=len(values) - 1,
                enter_event=start - 1 if start > 0 else None,
                exit_event=None,
            )
        )
    return intervals


def detect_definitely(
    computation: Computation, wcp: WeakConjunctivePredicate
) -> StrongReport:
    """Polynomial definitely(φ) for a conjunctive predicate."""
    wcp.check_against(computation.num_processes)
    clocks = event_vector_clocks(computation)

    def enter_reaches_exit(enter_i, exit_j, pid_i: int, pid_j: int) -> bool:
        """enter(I_i) -> exit(I_j), with boundary conventions."""
        if enter_i is None:  # true from the very start: cannot be dodged
            return True
        if exit_j is None:  # never exits: cannot be dodged either
            return True
        # Fidge–Mattern: event (pid_i, enter_i) in the causal past of
        # event (pid_j, exit_j).
        return (
            clocks[pid_i][enter_i][pid_i] <= clocks[pid_j][exit_j][pid_i]
        )

    queues: dict[int, deque[TrueInterval]] = {}
    for pid in wcp.pids:
        runs = true_intervals_states(computation, pid, wcp.clause(pid))
        if not runs:
            return StrongReport(
                holds=False, box=None, eliminations=0, comparisons=0,
                reason=f"clause on P{pid} never holds",
            )
        queues[pid] = deque(runs)

    eliminations = 0
    comparisons = 0
    pending = deque(wcp.pids)
    in_pending = set(wcp.pids)
    while pending:
        i = pending.popleft()
        in_pending.discard(i)
        restart = False
        for j in wcp.pids:
            if j == i:
                continue
            head_i = queues[i][0]
            head_j = queues[j][0]
            comparisons += 2
            # Pair is safe iff enter(I_i) -> exit(I_j) AND vice versa.
            if not enter_reaches_exit(
                head_i.enter_event, head_j.exit_event, i, j
            ):
                loser = j
            elif not enter_reaches_exit(
                head_j.enter_event, head_i.exit_event, j, i
            ):
                loser = i
            else:
                continue
            queues[loser].popleft()
            eliminations += 1
            if not queues[loser]:
                return StrongReport(
                    holds=False, box=None, eliminations=eliminations,
                    comparisons=comparisons,
                    reason=f"P{loser} ran out of true intervals",
                )
            if loser not in in_pending:
                pending.append(loser)
                in_pending.add(loser)
            if loser == i:
                restart = True
                break
        if restart:
            continue
    box = {
        pid: (queues[pid][0].first_state, queues[pid][0].last_state)
        for pid in wcp.pids
    }
    return StrongReport(
        holds=True, box=box, eliminations=eliminations,
        comparisons=comparisons,
    )
