"""Detection algorithms: the paper's contributions and their baselines."""

from repro.detect.base import (
    GREEN,
    HALT_KIND,
    POLL_KIND,
    POLL_RESPONSE_KIND,
    RED,
    TOKEN_KIND,
    DetectionReport,
    app_name,
    monitor_name,
)

__all__ = [
    "DetectionReport",
    "TOKEN_KIND",
    "POLL_KIND",
    "POLL_RESPONSE_KIND",
    "HALT_KIND",
    "RED",
    "GREEN",
    "monitor_name",
    "app_name",
    "run_detector",
    "run_service",
    "DETECTORS",
    "FAULT_CAPABLE",
    "harden",
    "hardened_variant",
]


def __getattr__(name: str):
    # runner imports every algorithm module; loading it lazily keeps
    # `import repro.detect` cheap and avoids import cycles.
    if name in (
        "run_detector",
        "run_service",
        "DETECTORS",
        "FAULT_CAPABLE",
        "offline_detectors",
        "online_detectors",
        "harden",
        "hardened_variant",
    ):
        from repro.detect import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
