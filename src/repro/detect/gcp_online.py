"""Online GCP detection for *linear* channel predicates ([6]'s checker).

The offline GCP detector (:mod:`repro.detect.gcp`) searches the whole
lattice — exponential.  Garg, Chase, Mitchell & Kilgore's actual
algorithm is polynomial for the class of **linear** channel predicates:
when a clause is false at the current candidate cut, one designated
endpoint's candidate can be eliminated outright, because the clause
stays false however far the *other* endpoint advances (see
:class:`repro.predicates.channel.LinearChannelPredicate`).

The checker extends the Garg–Waldecker elimination loop: snapshots carry
per-channel send/receive counters; once the candidate heads are pairwise
concurrent, each channel clause is evaluated on
``sends(src) − recvs(dest)``; a false clause eliminates its culprit's
head and elimination resumes.  Detection yields the least satisfying
cut (the satisfying cuts of a linear GCP are closed under meet).

Channel endpoints must be predicate processes — the checker needs their
snapshot streams.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.common.errors import ConfigurationError
from repro.common.types import WORD_BITS
from repro.detect.base import DetectionReport, app_name
from repro.detect.centralized import CHECKER_NAME, _SlotFeeder
from repro.predicates.channel import LinearChannelPredicate
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.simulation.actors import Actor
from repro.simulation.kernel import Kernel
from repro.simulation.network import ChannelModel
from repro.simulation.replay import (
    CANDIDATE_KIND,
    END_OF_TRACE_KIND,
    FeedItem,
)
from repro.trace.computation import Computation
from repro.trace.cuts import Cut
from repro.trace.snapshots import GCPSnapshot, gcp_snapshots

__all__ = ["GCPCheckerActor", "detect_gcp_online"]


class GCPCheckerActor(Actor):
    """The [6] checker: WCP elimination plus linear channel clauses."""

    def __init__(
        self,
        pids: tuple[int, ...],
        channels: Sequence[LinearChannelPredicate],
    ) -> None:
        super().__init__(CHECKER_NAME)
        self._pids = pids
        self._slot_of = {pid: slot for slot, pid in enumerate(pids)}
        self._channels = tuple(channels)
        self.detected = False
        self.detected_cut: tuple[int, ...] | None = None
        self.detected_at: float | None = None
        self.eliminations = 0
        self.channel_eliminations = 0
        self.comparisons = 0

    def run(self):
        n = len(self._pids)
        queues: list[deque[GCPSnapshot]] = [deque() for _ in range(n)]
        closed = [False] * n
        pending: deque[int] = deque()
        in_pending = [False] * n

        def mark_pending(slot: int) -> None:
            if not in_pending[slot]:
                in_pending[slot] = True
                pending.append(slot)

        def hb(i: int, j: int) -> bool:
            pid_i = self._pids[i]
            return queues[i][0].vector[pid_i] <= queues[j][0].vector[pid_i]

        def pop(slot: int) -> None:
            snapshot = queues[slot].popleft()
            self.metrics.adjust_space(-self._snapshot_bits(snapshot))
            self.eliminations += 1
            if queues[slot]:
                mark_pending(slot)

        while True:
            msg = yield self.receive(CANDIDATE_KIND, END_OF_TRACE_KIND)
            if msg.kind == END_OF_TRACE_KIND:
                closed[msg.payload] = True
            else:
                slot, snapshot = msg.payload
                yield self.work(1)
                was_empty = not queues[slot]
                queues[slot].append(snapshot)
                self.metrics.adjust_space(self._snapshot_bits(snapshot))
                if was_empty:
                    mark_pending(slot)
            progressed = True
            while progressed:
                progressed = False
                # Phase 1: pairwise-concurrency elimination.
                while pending:
                    i = pending.popleft()
                    in_pending[i] = False
                    if not queues[i]:
                        continue
                    for j in range(n):
                        if j == i or not queues[j]:
                            continue
                        yield self.work(2)
                        self.comparisons += 2
                        if hb(i, j):
                            loser = i
                        elif hb(j, i):
                            loser = j
                        else:
                            continue
                        pop(loser)
                        if loser == i:
                            break
                # Phase 2: channel clauses (need every head present).
                if all(queues[s] for s in range(n)):
                    for clause in self._channels:
                        yield self.work(1)
                        src_head = queues[self._slot_of[clause.src]][0]
                        dest_head = queues[self._slot_of[clause.dest]][0]
                        count = (
                            src_head.sends[clause.dest]
                            - dest_head.recvs[clause.src]
                        )
                        if not clause.holds_for_count(count):
                            culprit = self._slot_of[clause.culprit()]
                            pop(culprit)
                            self.channel_eliminations += 1
                            progressed = True
                            break
            if any(closed[s] and not queues[s] for s in range(n)):
                return
            if all(queues[s] for s in range(n)):
                self.detected = True
                self.detected_cut = tuple(
                    queues[s][0].interval for s in range(n)
                )
                self.detected_at = self.now
                return

    @staticmethod
    def _snapshot_bits(snapshot: GCPSnapshot) -> int:
        return (
            snapshot.vector.size_words()
            + len(snapshot.sends)
            + len(snapshot.recvs)
        ) * WORD_BITS


def detect_gcp_online(
    computation: Computation,
    wcp: WeakConjunctivePredicate,
    channels: Sequence[LinearChannelPredicate],
    *,
    seed: int = 0,
    channel_model: ChannelModel | None = None,
    spacing: float = 1.0,
) -> DetectionReport:
    """Detect ``wcp ∧ channels`` online with the linear-GCP checker."""
    wcp.check_against(computation.num_processes)
    for clause in channels:
        if clause.src not in wcp.pids or clause.dest not in wcp.pids:
            raise ConfigurationError(
                f"channel clause {clause} endpoints must be predicate "
                f"processes {wcp.pids}"
            )
    pids = wcp.pids
    kernel = Kernel(channel_model=channel_model, seed=seed)
    checker = GCPCheckerActor(pids, channels)
    kernel.add_actor(checker)
    channel_pairs = [(c.src, c.dest) for c in channels]
    streams = gcp_snapshots(computation, wcp.predicate_map(), channel_pairs)
    for slot, pid in enumerate(pids):
        items = [
            FeedItem(
                payload=(slot, snapshot),
                size_bits=GCPCheckerActor._snapshot_bits(snapshot),
                time=snapshot.time,
            )
            for snapshot in streams[pid]
        ]
        kernel.add_actor(
            _SlotFeeder(app_name(pid), CHECKER_NAME, items, slot, spacing)
        )
    sim = kernel.run()
    extras = {
        "comparisons": checker.comparisons,
        "eliminations": checker.eliminations,
        "channel_eliminations": checker.channel_eliminations,
    }
    if checker.detected:
        assert checker.detected_cut is not None
        return DetectionReport(
            detector="gcp_online",
            detected=True,
            cut=Cut(pids, checker.detected_cut),
            detection_time=checker.detected_at,
            sim=sim,
            metrics=kernel.metrics,
            extras=extras,
        )
    return DetectionReport(
        detector="gcp_online",
        detected=False,
        sim=sim,
        metrics=kernel.metrics,
        extras=extras,
    )

