"""Cooper–Marzullo lattice baseline: possibly(φ) and definitely(φ).

Cooper and Marzullo [3] detect arbitrary global predicates by building
the lattice of consistent global states and searching it — the approach
the paper improves on for conjunctive predicates.  We implement both
modalities at interval granularity:

* ``possibly(φ)`` — some consistent observation passes through a state
  satisfying φ.  For a WCP this coincides with the other detectors; the
  level-order search also returns the *least* satisfying cut, making it
  directly comparable.
* ``definitely(φ)`` — every consistent observation passes through a
  satisfying state.  Computed by searching for a φ-avoiding path from
  the initial to the final global state.

Both are exponential in the worst case (the lattice can have
``Θ(k^n)`` states); the ``extras`` of the report record how many states
were explored, which experiment E8 uses to show why the paper's
polynomial algorithms matter.
"""

from __future__ import annotations

from repro.detect.base import DetectionReport
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.predicates.evaluator import candidate_intervals
from repro.trace.computation import Computation
from repro.trace.cuts import Cut
from repro.trace.lattice import consistent_successors, initial_cut

__all__ = ["detect", "possibly", "definitely"]


def possibly(
    computation: Computation, wcp: WeakConjunctivePredicate
) -> tuple[Cut | None, dict[str, int]]:
    """Level-order lattice search for the least satisfying cut.

    Returns ``(cut, stats)``; ``stats`` records ``states_explored`` and
    ``max_level_width`` (the widest lattice level visited).
    """
    wcp.check_against(computation.num_processes)
    analysis = computation.analysis()
    truth = {
        pid: set(ivs) for pid, ivs in candidate_intervals(computation, wcp).items()
    }

    def satisfies(cut: Cut) -> bool:
        return all(cut.component(pid) in truth[pid] for pid in wcp.pids)

    start = initial_cut(analysis, wcp.pids)
    frontier = {start.intervals: start}
    explored = 0
    max_width = 0
    while frontier:
        max_width = max(max_width, len(frontier))
        next_frontier: dict[tuple[int, ...], Cut] = {}
        for cut in frontier.values():
            explored += 1
            if satisfies(cut):
                return cut, {
                    "states_explored": explored,
                    "max_level_width": max_width,
                }
            for succ in consistent_successors(analysis, cut):
                next_frontier.setdefault(succ.intervals, succ)
        frontier = next_frontier
    return None, {"states_explored": explored, "max_level_width": max_width}


def definitely(
    computation: Computation, wcp: WeakConjunctivePredicate
) -> tuple[bool, dict[str, int]]:
    """Whether every consistent observation passes through a satisfying cut.

    True iff no path of non-satisfying consistent cuts connects the
    initial global state to the final one (satisfying endpoints
    trivially decide their cases).
    """
    wcp.check_against(computation.num_processes)
    analysis = computation.analysis()
    truth = {
        pid: set(ivs) for pid, ivs in candidate_intervals(computation, wcp).items()
    }

    def satisfies(cut: Cut) -> bool:
        return all(cut.component(pid) in truth[pid] for pid in wcp.pids)

    final_intervals = tuple(analysis.num_intervals(pid) for pid in wcp.pids)
    start = initial_cut(analysis, wcp.pids)
    explored = 0
    if satisfies(start):
        # Every observation starts here; if the final state also always
        # passes through... the start alone suffices.
        return True, {"states_explored": 1}
    frontier = {start.intervals: start}
    seen = {start.intervals}
    while frontier:
        next_frontier: dict[tuple[int, ...], Cut] = {}
        for cut in frontier.values():
            explored += 1
            if cut.intervals == final_intervals:
                return False, {"states_explored": explored}
            for succ in consistent_successors(analysis, cut):
                if succ.intervals in seen or satisfies(succ):
                    continue
                seen.add(succ.intervals)
                next_frontier.setdefault(succ.intervals, succ)
        frontier = next_frontier
    return True, {"states_explored": explored}


def detect(
    computation: Computation, wcp: WeakConjunctivePredicate
) -> DetectionReport:
    """Run possibly(φ) and report uniformly (matching the other detectors)."""
    cut, stats = possibly(computation, wcp)
    return DetectionReport(
        detector="lattice",
        detected=cut is not None,
        cut=cut,
        extras=dict(stats),
    )
