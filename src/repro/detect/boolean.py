"""Detection of arbitrary boolean global predicates via WCP reduction.

Implements the reduction the paper cites from [7]: normalize the boolean
expression to DNF, detect each disjunct as a WCP (with any registered
WCP detector), and report "possibly(φ)" if any disjunct holds.  Among
the detected disjunct cuts the minimal-*level* one is reported; unlike a
single WCP, the satisfying cuts of a disjunction are not closed under
componentwise minimum, so a unique "first cut" need not exist (ties are
broken by lexicographic interval order for determinism).

Cuts of different disjuncts may range over different process subsets;
the reported cut keeps the winning disjunct's subset, and ``extras``
records which disjunct won.
"""

from __future__ import annotations

from repro.detect.base import DetectionReport
from repro.predicates.boolexpr import BoolExpr
from repro.trace.computation import Computation

__all__ = ["detect_boolean"]


def detect_boolean(
    computation: Computation,
    expression: BoolExpr,
    detector: str = "reference",
    **options: object,
) -> DetectionReport:
    """Detect a boolean global predicate by DNF-of-WCPs reduction.

    Parameters
    ----------
    detector:
        Any name from :data:`repro.detect.runner.DETECTORS`; every
        disjunct runs through it.
    options:
        Forwarded to the underlying detector (seed, channel model, ...).
    """
    from repro.detect.runner import run_detector

    wcps = expression.to_wcps()
    best = None
    best_key: tuple[int, tuple[int, ...]] | None = None
    winner = -1
    sub_reports = []
    for index, wcp in enumerate(wcps):
        report = run_detector(detector, computation, wcp, **options)
        sub_reports.append(report)
        if not report.detected:
            continue
        assert report.cut is not None
        key = (sum(report.cut.intervals), report.cut.intervals)
        if best_key is None or key < best_key:
            best, best_key, winner = report, key, index
    extras = {
        "disjuncts": len(wcps),
        "winning_disjunct": winner,
        "disjuncts_detected": sum(1 for r in sub_reports if r.detected),
    }
    if best is None:
        return DetectionReport(
            detector=f"boolean[{detector}]", detected=False, extras=extras
        )
    return DetectionReport(
        detector=f"boolean[{detector}]",
        detected=True,
        cut=best.cut,
        detection_time=best.detection_time,
        extras=extras,
    )
