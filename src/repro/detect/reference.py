"""Offline reference detector: ground truth for every other algorithm.

This is the Garg–Waldecker elimination algorithm [7] run directly on the
recorded trace (no simulation): keep one queue of candidate intervals
per predicate process, repeatedly eliminate any queue head that
happened-before another head, and stop when the heads are pairwise
concurrent (detected — the heads are the *first* satisfying cut) or some
queue runs dry (the WCP never holds).

Correctness rests on the same fact as the paper's Lemma 3.1(4): a state
that happened before another current head cannot belong to any
consistent cut that also uses that head or any of its successors, so it
can never appear in the first satisfying cut.

Complexity: every elimination triggers at most ``2(n-1)`` head
comparisons (the re-check queue), each O(1) via vector clocks, so the
total is ``O(n^2 m)`` comparisons — matching the paper's bound for the
centralized algorithm.
"""

from __future__ import annotations

from collections import deque

from repro.common.types import StateRef
from repro.detect.base import DetectionReport
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.predicates.evaluator import candidate_intervals
from repro.trace.computation import Computation
from repro.trace.cuts import Cut

__all__ = ["detect", "first_satisfying_cut"]


def first_satisfying_cut(
    computation: Computation, wcp: WeakConjunctivePredicate
) -> tuple[Cut | None, dict[str, int]]:
    """The unique least satisfying consistent cut, with cost counters.

    Returns ``(cut, stats)`` where ``cut`` is ``None`` when the WCP never
    holds and ``stats`` counts ``comparisons`` and ``eliminations``.
    """
    wcp.check_against(computation.num_processes)
    analysis = computation.analysis()
    pids = wcp.pids
    queues = {
        pid: deque(intervals)
        for pid, intervals in candidate_intervals(computation, wcp).items()
    }
    comparisons = 0
    eliminations = 0

    if any(not queues[pid] for pid in pids):
        return None, {"comparisons": comparisons, "eliminations": eliminations}

    def head(pid: int) -> StateRef:
        return StateRef(pid, queues[pid][0])

    # Pids whose head changed since they were last compared against all
    # other heads.  Every pair is (re)checked after either side changes.
    pending = deque(pids)
    in_pending = set(pids)
    while pending:
        i = pending.popleft()
        in_pending.discard(i)
        restart = False
        for j in pids:
            if j == i:
                continue
            comparisons += 2
            if analysis.happened_before(head(i), head(j)):
                loser = i
            elif analysis.happened_before(head(j), head(i)):
                loser = j
            else:
                continue
            queues[loser].popleft()
            eliminations += 1
            if not queues[loser]:
                return None, {
                    "comparisons": comparisons,
                    "eliminations": eliminations,
                }
            if loser not in in_pending:
                pending.append(loser)
                in_pending.add(loser)
            if loser == i:
                restart = True
                break
        if restart:
            continue
    cut = Cut(pids, tuple(queues[pid][0] for pid in pids))
    return cut, {"comparisons": comparisons, "eliminations": eliminations}


def detect(
    computation: Computation, wcp: WeakConjunctivePredicate
) -> DetectionReport:
    """Run the offline reference detector and report uniformly."""
    cut, stats = first_satisfying_cut(computation, wcp)
    return DetectionReport(
        detector="reference",
        detected=cut is not None,
        cut=cut,
        extras=dict(stats),
    )
