"""§3.5: the multi-token (grouped) variant of the vector-clock algorithm.

The single-token algorithm has no concurrency — only the token holder is
active.  §3.5 partitions the monitors into ``g`` groups with one token
each.  Within a group the single-token algorithm runs unchanged except
that the token never leaves the group; once no slot *of the group* is
red in its token, the token returns to a pre-determined **leader**.

The leader merges the ``g`` tokens into a global candidate cut.  Merging
uses elimination semantics: a red entry ``(G, red)`` means states up to
and including ``G`` are eliminated; a green entry ``(G, green)`` means
``G`` is a live candidate (states before it eliminated).  A slot's live
candidate comes only from its own group's token (other tokens can only
*eliminate* it).  If the merged cut is all green the WCP is detected —
the same pairwise-concurrency argument as Theorem 3.2 applies, because a
green candidate surviving every token's elimination bound cannot have
happened before any other green candidate.  Otherwise the leader sends
refreshed tokens into every group that still has a red slot and repeats.

Totals match the single-token algorithm; the win is concurrency: ``g``
monitors can be active at once, which experiment E4 measures as
makespan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.errors import ConfigurationError
from repro.common.types import WORD_BITS
from repro.detect.base import (
    GREEN,
    HALT_KIND,
    RED,
    TOKEN_KIND,
    DetectionReport,
    app_name,
    monitor_name,
    partial_cut_extras,
)
from repro.detect.stack import (
    AdaptiveRetryPolicy,
    FailureDetectorConfig,
    ReliableFeeder,
    RetryPolicy,
    StackGlue,
    TokenFrame,
    harden,
    register_glue,
    spawn_joiners,
)
from repro.detect.token_vc import VCToken, candidate_feed_items
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.simulation.actors import Actor
from repro.simulation.kernel import Kernel
from repro.simulation.network import ChannelModel
from repro.simulation.replay import (
    CANDIDATE_KIND,
    END_OF_TRACE_KIND,
    SnapshotFeeder,
)
from repro.trace.computation import Computation
from repro.trace.cuts import Cut

if TYPE_CHECKING:  # annotation-only: cores stay decoupled from the fault layer
    from repro.simulation.faults import FaultPlan

__all__ = [
    "GroupToken",
    "GroupMonitor",
    "LeaderActor",
    "HardenedGroupMonitor",
    "HardenedLeader",
    "detect",
    "LEADER_NAME",
]

LEADER_NAME = "leader"


@dataclass
class GroupToken:
    """One group's token: a full-width :class:`VCToken` tagged with its group."""

    group: int
    token: VCToken

    def size_bits(self) -> int:
        """Group tag plus the token vectors."""
        return WORD_BITS + self.token.size_bits()


class GroupMonitor(Actor):
    """A Fig. 3 monitor restricted to in-group token travel.

    Identical to the single-token monitor except: the red-slot search
    only considers slots in this monitor's group, and when none are red
    the token is returned to the leader.  Detection is always declared
    by the leader.
    """

    def __init__(
        self,
        pid: int,
        slot: int,
        monitor_names: list[str],
        group_slots: frozenset[int],
    ) -> None:
        super().__init__(monitor_name(pid))
        self._pid = pid
        self._slot = slot
        self._monitors = list(monitor_names)
        self._n = len(monitor_names)
        self._group_slots = group_slots
        self.aborted = False
        self.token_visits = 0

    def run(self):
        while True:
            msg = yield self.receive(TOKEN_KIND, HALT_KIND)
            if msg.kind == HALT_KIND:
                return
            finished = yield from self._handle_token(msg.payload)
            if finished:
                return

    def _handle_token(self, gtoken: GroupToken):
        token = gtoken.token
        slot = self._slot
        self.token_visits += 1
        candidate: tuple[int, ...] | None = None
        while token.color[slot] == RED:
            cmsg = yield self.receive(CANDIDATE_KIND, END_OF_TRACE_KIND)
            if cmsg.kind == END_OF_TRACE_KIND:
                self.aborted = True
                yield self.broadcast(
                    [m for m in self._monitors if m != self.name] + [LEADER_NAME],
                    None,
                    kind=HALT_KIND,
                    size_bits=1,
                )
                return True
            yield self.work(1)
            cand = cmsg.payload
            if cand[slot] > token.G[slot]:
                token.G[slot] = cand[slot]
                token.color[slot] = GREEN
                candidate = cand
        assert candidate is not None
        for j in range(self._n):
            if j == slot:
                continue
            yield self.work(1)
            if candidate[j] >= token.G[j]:
                token.G[j] = candidate[j]
                token.color[j] = RED
        yield self.work(self._n)
        target = self._next_in_group_red(token)
        dest = LEADER_NAME if target is None else self._monitors[target]
        yield self.send(dest, gtoken, kind=TOKEN_KIND, size_bits=gtoken.size_bits())
        return False

    def _next_in_group_red(self, token: VCToken) -> int | None:
        for step in range(1, self._n + 1):
            j = (self._slot + step) % self._n
            if j in self._group_slots and token.color[j] == RED:
                return j
        return None


class LeaderActor(Actor):
    """§3.5's pre-determined leader: merges tokens, re-dispatches, detects.

    Maintains the merged candidate cut as ``(live, elim)`` per slot:
    ``live[i]`` is the current candidate from group(i)'s token (or None),
    ``elim[i]`` the highest eliminated interval from any token.
    """

    def __init__(
        self,
        groups: list[frozenset[int]],
        group_of: list[int],
        monitor_names: list[str],
    ) -> None:
        super().__init__(LEADER_NAME)
        self._groups = groups
        self._group_of = group_of
        self._monitors = monitor_names
        self._n = len(monitor_names)
        self.detected = False
        self.detected_cut: tuple[int, ...] | None = None
        self.detected_at: float | None = None
        self.rounds = 0

    def run(self):
        n = self._n
        live: list[int | None] = [None] * n
        elim: list[int] = [0] * n  # states <= elim[i] are eliminated; 0 = none
        while True:
            self.rounds += 1
            red_slots = [i for i in range(n) if live[i] is None or live[i] <= elim[i]]
            if not red_slots:
                self.detected = True
                self.detected_cut = tuple(live)  # type: ignore[arg-type]
                self.detected_at = self.now
                yield self.broadcast(
                    self._monitors, None, kind=HALT_KIND, size_bits=1
                )
                return
            red_groups = sorted({self._group_of[i] for i in red_slots})
            for g in red_groups:
                token = VCToken(G=[0] * n, color=[RED] * n)
                for i in range(n):
                    if live[i] is not None and live[i] > elim[i]:
                        token.G[i] = live[i]
                        token.color[i] = GREEN
                    else:
                        token.G[i] = elim[i]
                        token.color[i] = RED
                gtoken = GroupToken(g, token)
                entry = min(i for i in red_slots if self._group_of[i] == g)
                yield self.send(
                    self._monitors[entry],
                    gtoken,
                    kind=TOKEN_KIND,
                    size_bits=gtoken.size_bits(),
                )
            outstanding = len(red_groups)
            while outstanding:
                msg = yield self.receive(TOKEN_KIND, HALT_KIND)
                if msg.kind == HALT_KIND:
                    return
                returned: GroupToken = msg.payload
                yield self.work(n)
                self._merge(returned, live, elim)
                outstanding -= 1

    def _merge(
        self, gtoken: GroupToken, live: list[int | None], elim: list[int]
    ) -> None:
        token = gtoken.token
        for i in range(self._n):
            if self._group_of[i] == gtoken.group:
                # Authoritative candidate for this slot.
                live[i] = token.G[i] if token.color[i] == GREEN else None
                bound = token.G[i] if token.color[i] == RED else token.G[i] - 1
                elim[i] = max(elim[i], bound)
            else:
                # Other groups can only eliminate.
                bound = token.G[i] if token.color[i] == RED else token.G[i] - 1
                elim[i] = max(elim[i], bound)


class GroupVCGlue(StackGlue):
    """Stack glue for the crash/loss-tolerant §3.5 group monitor.

    The in-group token travels in hop-numbered frames keyed by the group
    id (each group's token has its own hop sequence), acked per hop and
    retransmitted from the previous holder's persisted copy; candidates
    arrive through the sequence-numbered inbox.  See
    :class:`repro.detect.token_vc.TokenVCGlue` for the shared
    crash-resume argument and for the takeover semantics when a
    failure detector is configured.
    """

    def _init_visit_state(self) -> None:
        self._accepted: tuple[int, ...] | None = None

    # ------------------------------------------------------------------
    def _snapshot_frame(self, frame: TokenFrame) -> TokenFrame:
        gtoken: GroupToken = frame.body
        return TokenFrame(
            frame.hop,
            GroupToken(
                gtoken.group,
                VCToken(G=list(gtoken.token.G), color=list(gtoken.token.color)),
            ),
            frame.gid,
            frame.epoch,
        )

    def _on_token_accepted(self, frame: TokenFrame) -> None:
        self.token_visits += 1

    def _fd_slot(self) -> int:
        return self._slot

    def _fd_peers(self) -> dict[int, str]:
        # The leader participates at slot -1, so a live leader always
        # initiates (and wins) takeover elections — only it can merge.
        peers = {
            slot: name
            for slot, name in enumerate(self._monitors)
            if slot != self._slot
        }
        peers[-1] = LEADER_NAME
        return peers

    def _halt_targets(self) -> list[str]:
        peers = [m for m in self._monitors if m != self.name]
        feeders = [app_name(int(m.removeprefix("mon-"))) for m in self._monitors]
        return peers + [LEADER_NAME] + feeders

    def _resolve_frame(self, frame: TokenFrame, code: str) -> None:
        if code == "abort":
            self.aborted = True
        else:  # forward: in group, or back to the leader
            gtoken: GroupToken = frame.body
            target = self._next_in_group_red(gtoken.token)
            dest = LEADER_NAME if target is None else self._monitors[target]
            self._begin_transfer(
                dest,
                TokenFrame(frame.hop + 1, gtoken, frame.gid, frame.epoch),
                gtoken.size_bits() + WORD_BITS,
            )

    def _handle_frame(self, frame: TokenFrame):
        """One (possibly crash-resumed) visit; ``"halt"``/``"abort"``/``"forward"``."""
        token = frame.body.token
        slot = self._slot
        while token.color[slot] == RED:
            if (
                self._accepted is not None
                and self._accepted[slot] > token.G[slot]
            ):
                # Replay the persisted acceptance for a regenerated
                # token's re-visit (see token_vc._handle_frame).
                token.G[slot] = self._accepted[slot]
                token.color[slot] = GREEN
                yield self.work(1)
                continue
            entry = yield from self._next_candidate()
            if entry == "halt":
                return "halt"
            if entry is None:
                return "abort"
            cand = entry[0]
            if cand[slot] > token.G[slot]:
                token.G[slot] = cand[slot]
                token.color[slot] = GREEN
                self._accepted = cand
            yield self.work(1)
        candidate = self._accepted
        if candidate is not None and token.G[slot] == candidate[slot]:
            for j in range(self._n):
                if j == slot:
                    continue
                if candidate[j] >= token.G[j]:
                    token.G[j] = candidate[j]
                    token.color[j] = RED
                yield self.work(1)
        yield self.work(self._n)
        return "forward"


class LeaderGlue(StackGlue):
    """Stack glue for the crash/loss-tolerant §3.5 leader.

    The merge state (``live`` / ``elim``) and the set of groups whose
    tokens are outstanding live in persisted attributes; merging a
    returned token and retiring it from the outstanding set happen in
    one atomic block, and merging is idempotent (component-wise max), so
    a crash between rounds or mid-merge resumes cleanly.  Each round's
    fresh group tokens are numbered ``seen_hop(group) + 1``, continuing
    the group's hop sequence across rounds.  Rounds start from the
    stack run loop's idle hook (:meth:`_stack_idle`).

    With a failure detector the leader takes election slot ``-1``: it
    always initiates and wins takeovers (only it holds the merge state),
    regenerates lost group tokens from the survivors' persisted frames,
    merges them as returned tokens (the merge is monotone, so a mid-tour
    token's bounds are valid) and re-dispatches on the next round.
    """

    def _init_visit_state(self) -> None:
        self._live: list[int | None] = [None] * self._n
        self._elim: list[int] = [0] * self._n
        self._outstanding: set[int] = set()

    # ------------------------------------------------------------------
    def _snapshot_frame(self, frame: TokenFrame) -> TokenFrame:
        gtoken: GroupToken = frame.body
        return TokenFrame(
            frame.hop,
            GroupToken(
                gtoken.group,
                VCToken(G=list(gtoken.token.G), color=list(gtoken.token.color)),
            ),
            frame.gid,
            frame.epoch,
        )

    def _fd_slot(self) -> int:
        return -1

    def _fd_peers(self) -> dict[int, str]:
        return dict(enumerate(self._monitors))

    def _halt_targets(self) -> list[str]:
        feeders = [app_name(int(m.removeprefix("mon-"))) for m in self._monitors]
        return list(self._monitors) + feeders

    def _idle_description(self) -> str:
        return f"{self.name} awaiting group tokens"

    # ------------------------------------------------------------------
    def _handle_frame(self, frame: TokenFrame):
        yield self.work(self._n)
        return "merge"

    def _resolve_frame(self, frame: TokenFrame, code: str) -> None:
        # Atomic: merge the returned token and retire it together.
        gtoken: GroupToken = frame.body
        self._merge(gtoken, self._live, self._elim)
        self._outstanding.discard(gtoken.group)

    def _stack_idle(self) -> bool:
        """Start a new merge round once every group token has returned."""
        if self._outstanding:
            return False
        n = self._n
        self.rounds += 1
        red_slots = [
            i
            for i in range(n)
            if self._live[i] is None or self._live[i] <= self._elim[i]
        ]
        if not red_slots:
            self.detected = True
            self.detected_cut = tuple(self._live)  # type: ignore[arg-type]
            self.detected_at = self.now
            return True
        red_groups = sorted({self._group_of[i] for i in red_slots})
        for g in red_groups:
            token = VCToken(G=[0] * n, color=[RED] * n)
            for i in range(n):
                if self._live[i] is not None and self._live[i] > self._elim[i]:
                    token.G[i] = self._live[i]
                    token.color[i] = GREEN
                else:
                    token.G[i] = self._elim[i]
                    token.color[i] = RED
            gtoken = GroupToken(g, token)
            entry = min(i for i in red_slots if self._group_of[i] == g)
            last_hop = self._seen_hops.get(g, (0, 0))[1]
            self._begin_transfer(
                self._monitors[entry],
                TokenFrame(last_hop + 1, gtoken, gid=g, epoch=self._epoch),
                gtoken.size_bits() + WORD_BITS,
            )
        self._outstanding = set(red_groups)
        return True


register_glue(GroupMonitor, GroupVCGlue)
register_glue(LeaderActor, LeaderGlue)

#: Hardened §3.5 actors: plain cores + protocol stack, by composition.
HardenedGroupMonitor = harden(GroupMonitor)
HardenedLeader = harden(LeaderActor, name="HardenedLeader")


def _partition(n: int, g: int) -> tuple[list[frozenset[int]], list[int]]:
    """Contiguous partition of slots 0..n-1 into g non-empty groups."""
    if g < 1:
        raise ConfigurationError(f"groups must be >= 1, got {g}")
    g = min(g, n)
    base, extra = divmod(n, g)
    groups: list[frozenset[int]] = []
    group_of = [0] * n
    start = 0
    for k in range(g):
        size = base + (1 if k < extra else 0)
        members = frozenset(range(start, start + size))
        groups.append(members)
        for i in members:
            group_of[i] = k
        start += size
    return groups, group_of


def detect(
    computation: Computation,
    wcp: WeakConjunctivePredicate,
    *,
    seed: int = 0,
    channel_model: ChannelModel | None = None,
    spacing: float = 1.0,
    groups: int = 2,
    observers: list | None = None,
    faults: FaultPlan | None = None,
    hardened: bool | None = None,
    retry: RetryPolicy | AdaptiveRetryPolicy | None = None,
    failure_detector: FailureDetectorConfig | None = None,
    clock_backend: str = "list",
) -> DetectionReport:
    """Run the §3.5 multi-token algorithm with ``groups`` tokens.

    ``faults`` / ``hardened`` / ``retry`` / ``failure_detector`` /
    ``clock_backend`` behave as in :func:`repro.detect.token_vc.detect`.
    """
    wcp.check_against(computation.num_processes)
    pids = wcp.pids
    n = wcp.n
    use_hardened = (faults is not None) if hardened is None else hardened
    if use_hardened and retry is None:
        retry = AdaptiveRetryPolicy(seed=seed)
    group_sets, group_of = _partition(n, groups)
    kernel = Kernel(
        channel_model=channel_model, seed=seed, observers=observers, faults=faults
    )
    names = [monitor_name(pid) for pid in pids]
    if use_hardened:
        monitors = [
            HardenedGroupMonitor(
                pid, slot, names, group_sets[group_of[slot]], retry=retry,
                failure_detector=failure_detector,
            )
            for slot, pid in enumerate(pids)
        ]
        leader: LeaderActor = HardenedLeader(
            group_sets, group_of, names, retry=retry,
            failure_detector=failure_detector,
        )
    else:
        monitors = [
            GroupMonitor(pid, slot, names, group_sets[group_of[slot]])
            for slot, pid in enumerate(pids)
        ]
        leader = LeaderActor(group_sets, group_of, names)
    for mon in monitors:
        kernel.add_actor(mon)
    kernel.add_actor(leader)
    items_by_pid = candidate_feed_items(
        computation, wcp.predicate_map(), pids, clock_backend
    )
    feeders = []
    for pid in pids:
        items = items_by_pid[pid]
        if use_hardened:
            feeder = ReliableFeeder(
                app_name(pid), monitor_name(pid), items, spacing, retry
            )
        else:
            feeder = SnapshotFeeder(app_name(pid), monitor_name(pid), items, spacing)
        feeders.append(feeder)
        kernel.add_actor(feeder)
    joiners = spawn_joiners(
        kernel, faults, names,
        hardened=use_hardened, config=failure_detector, retry=retry,
    )
    sim = kernel.run()

    aborted = any(m.aborted for m in monitors)
    actor_metrics = kernel.metrics.actors()
    extras = {
        "groups": len(group_sets),
        "rounds": leader.rounds,
        "token_hops": sum(
            m.sent_by_kind.get(TOKEN_KIND, 0)
            for name, m in actor_metrics.items()
            if name.startswith("mon-") or name == LEADER_NAME
        ),
        "token_visits": sum(m.token_visits for m in monitors),
        "aborted": aborted,
        "hardened": use_hardened,
    }
    if use_hardened:
        participants = [leader, *monitors, *feeders]
        extras["gave_up"] = any(
            getattr(a, "gave_up", False) for a in participants
        )
        extras["halt_incomplete"] = any(
            getattr(a, "halt_incomplete", False) for a in participants
        )
        extras["elections"] = sum(
            getattr(a, "elections", 0) for a in (leader, *monitors)
        )
        extras["takeovers"] = sum(
            getattr(a, "takeovers", 0) for a in (leader, *monitors)
        )
        if joiners:
            extras["joiners"] = len(joiners)
            extras["joined"] = sum(1 for j in joiners if j.joined)
            extras["synced"] = sum(1 for j in joiners if j.synced)
    if leader.detected:
        assert leader.detected_cut is not None
        return DetectionReport(
            detector="token_vc_multi",
            detected=True,
            cut=Cut(pids, leader.detected_cut),
            detection_time=leader.detected_at,
            sim=sim,
            metrics=kernel.metrics,
            extras=extras,
        )
    degraded = faults is not None and not aborted
    if use_hardened and degraded:
        extras.update(
            partial_cut_extras(
                pids,
                [getattr(m, "_accepted", None) for m in monitors],
                sim.crashed,
            )
        )
    return DetectionReport(
        detector="token_vc_multi",
        detected=False,
        sim=sim,
        metrics=kernel.metrics,
        extras=extras,
        degraded=degraded,
    )
