"""Membership-only hosts for scaling the failure-detector benchmarks.

The exactness suites exercise the membership layer at the paper's scale
(a handful of monitors).  This module isolates the layer so its traffic
can be measured at *large* monitor-group sizes without dragging a whole
detection protocol along: a :class:`MembershipHost` runs the failure
detector (heartbeat or SWIM gossip, per
:class:`~repro.detect.stack.membership.FailureDetectorConfig`) over the
reliable transport and nothing else — no token, no candidates, no
elections (``_fd_can_take_over = False``).

:func:`run_membership_trial` spins up ``n`` hosts, crash-stops one of
them, and reports each survivor's *detection time* — the first instant
the victim left its alive set — alongside the run's liveness bytes.
:func:`run_elastic_trial` instead *grows* a gossip group from ``n//4``
hosts to ``n`` via live :class:`~repro.detect.stack.join.StandbyMonitor`
joins and reports the dedicated handshake traffic separately, isolating
what scale-out itself costs.  ``benchmarks/membership_scale.py`` sweeps
both over group sizes to record the O(N) vs O(N²) traffic separation
and the per-joiner handshake cost.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.detect.stack.gossip import (
    JOIN_ACK_KIND,
    JOIN_KIND,
    STATE_SYNC_KIND,
)
from repro.detect.stack.join import StandbyMonitor
from repro.detect.stack.membership import (
    FailureDetectorConfig,
    FailureDetectorMixin,
)
from repro.detect.stack.transport import FEED_JOIN_KIND, ReliableEndpoint
from repro.simulation.actors import Actor
from repro.simulation.faults import CrashEvent, FaultPlan
from repro.simulation.kernel import Kernel

__all__ = [
    "ElasticTrial",
    "MembershipHost",
    "MembershipTrial",
    "run_elastic_trial",
    "run_membership_trial",
]

_HANDSHAKE_KINDS = (JOIN_KIND, JOIN_ACK_KIND, STATE_SYNC_KIND, FEED_JOIN_KIND)


class MembershipHost(FailureDetectorMixin, ReliableEndpoint, Actor):
    """An actor that runs only the membership layer, for ``duration``.

    Every peer starts presumed-alive (the heartbeat path pre-seeds
    ``_fd_last_heard`` so both modes begin from the same belief), and
    the host records the first time each peer slot drops out of its
    alive set in ``suspected_at``.
    """

    _fd_can_take_over = False

    def __init__(
        self,
        name: str,
        slot: int,
        peers: dict[int, str],
        config: FailureDetectorConfig,
        duration: float,
    ) -> None:
        super().__init__(name)
        self._init_reliability(None)
        self._init_failure_detector(config)
        self._slot = slot
        self._peers = dict(peers)
        self._duration = duration
        self.suspected_at: dict[int, float] = {}
        for peer_slot in self._peers:
            self._fd_last_heard[peer_slot] = 0.0

    # -- membership-layer host hooks -----------------------------------
    def _fd_slot(self) -> int:
        return self._slot

    def _fd_peers(self) -> dict[int, str]:
        return self._peers

    # -- run loop ------------------------------------------------------
    def _note_suspicions(self) -> None:
        alive = self._fd_alive_slots(self.now)
        for peer_slot in self._peers:
            if peer_slot not in alive and peer_slot not in self.suspected_at:
                self.suspected_at[peer_slot] = self.now

    def run(self):
        while self.now < self._duration:
            msg = yield from self._fd_receive(f"{self.name} membership idle")
            if msg is not None:
                code = yield from self._dispatch_common(msg)
                if code == "unhandled":
                    yield from self._dispatch_fd(msg)
            self._note_suspicions()


@dataclass(frozen=True, slots=True)
class MembershipTrial:
    """One membership-layer run's measurements."""

    n: int
    membership: str
    liveness_bytes: int
    detection_times: tuple[float, ...]
    crash_at: float

    @property
    def max_detection_latency(self) -> float:
        """Worst survivor's time-to-suspicion for the crashed member."""
        if not self.detection_times:
            return float("inf")
        return max(self.detection_times) - self.crash_at

    @property
    def all_detected(self) -> bool:
        return len(self.detection_times) == self.n - 1


def run_membership_trial(
    n: int,
    config: FailureDetectorConfig,
    *,
    duration: float = 40.0,
    crash_at: float = 10.0,
    seed: int = 0,
) -> MembershipTrial:
    """Run ``n`` membership hosts, crash-stop member 1, measure.

    Returns the survivors' per-host detection times for the victim and
    the whole run's liveness bytes (heartbeats + pings/acks/ping-reqs,
    including piggybacked membership entries).
    """
    if n < 2:
        raise ValueError("membership trial needs n >= 2")
    # The detector must keep ticking for the whole trial — there is no
    # protocol traffic to fall back on, so disable the idle cutoff.
    config = replace(config, max_idle_rounds=10**9)
    names = {slot: f"member-{slot}" for slot in range(n)}
    victim_slot = 1
    plan = FaultPlan(crashes=(CrashEvent(names[victim_slot], crash_at),))
    kernel = Kernel(seed=seed, faults=plan, max_steps=50_000_000)
    hosts = []
    for slot, name in names.items():
        peers = {s: p for s, p in names.items() if s != slot}
        host = MembershipHost(name, slot, peers, config, duration)
        kernel.add_actor(host)
        hosts.append(host)
    kernel.run(until=duration * 2)
    detection_times = tuple(
        sorted(
            host.suspected_at[victim_slot]
            for host in hosts
            if host._slot != victim_slot
            and victim_slot in host.suspected_at
        )
    )
    return MembershipTrial(
        n=n,
        membership=config.membership,
        liveness_bytes=kernel.metrics.liveness_bytes(),
        detection_times=detection_times,
        crash_at=crash_at,
    )


@dataclass(frozen=True, slots=True)
class ElasticTrial:
    """One scale-out run's measurements: a group grown from
    ``n_start`` to ``n`` members by live joins."""

    n: int
    n_start: int
    joined: int
    synced: int
    liveness_bytes: int
    handshake_bytes: int
    handshake_messages: int

    @property
    def joiners(self) -> int:
        return self.n - self.n_start

    @property
    def all_joined(self) -> bool:
        return self.joined == self.joiners and self.synced == self.joiners


def run_elastic_trial(
    n: int,
    config: FailureDetectorConfig,
    *,
    duration: float = 60.0,
    join_at: float = 10.0,
    seed: int = 0,
) -> ElasticTrial:
    """Grow a gossip group from ``n // 4`` members to ``n`` by live joins.

    ``n - n_start`` standby monitors join from ``join_at`` on —
    staggered evenly across a window that closes by mid-run, so the
    handshakes overlap without being simultaneous and every joiner
    still has half the trial to integrate — with seed contacts spread
    round-robin over the static members.
    Reports the dedicated join-handshake traffic separately from the
    steady-state liveness bytes: the handshake is the *only* dedicated
    cost of a join — the introduction itself disseminates as O(1)
    piggybacked bytes on probes already in flight, so the per-joiner
    dedicated byte count is dominated by one welcome snapshot
    (O(n_start) entries) regardless of how large the group grows.
    """
    if config.membership != "gossip":
        raise ValueError("elastic trials require gossip membership")
    n_start = max(2, n // 4)
    if n <= n_start:
        raise ValueError(f"elastic trial needs n > {n_start}, got {n}")
    config = replace(config, max_idle_rounds=10**9)
    names = {slot: f"member-{slot}" for slot in range(n_start)}
    kernel = Kernel(seed=seed, max_steps=50_000_000)
    for slot, name in names.items():
        peers = {s: p for s, p in names.items() if s != slot}
        kernel.add_actor(MembershipHost(name, slot, peers, config, duration))
    if duration / 2 <= join_at:
        raise ValueError(
            f"join_at {join_at} must fall in the first half of the "
            f"{duration}s trial"
        )
    joiners: list[StandbyMonitor] = []
    stagger = (duration / 2 - join_at) / (n - n_start)
    for index in range(n - n_start):
        contact_slot = index % n_start
        joiner = StandbyMonitor(
            f"member-{n_start + index}", n_start + index,
            names[contact_slot], contact_slot, config=config,
        )
        kernel.spawn_new(join_at + index * stagger, joiner)
        joiners.append(joiner)
    kernel.run(until=duration)
    metrics = kernel.metrics
    return ElasticTrial(
        n=n,
        n_start=n_start,
        joined=sum(1 for j in joiners if j.joined),
        synced=sum(1 for j in joiners if j.synced),
        liveness_bytes=metrics.liveness_bytes(),
        handshake_bytes=sum(
            metrics.bits_of_kind(kind) for kind in _HANDSHAKE_KINDS
        ) // 8,
        handshake_messages=sum(
            metrics.messages_of_kind(kind) for kind in _HANDSHAKE_KINDS
        ),
    )
