"""Membership-only hosts for scaling the failure-detector benchmarks.

The exactness suites exercise the membership layer at the paper's scale
(a handful of monitors).  This module isolates the layer so its traffic
can be measured at *large* monitor-group sizes without dragging a whole
detection protocol along: a :class:`MembershipHost` runs the failure
detector (heartbeat or SWIM gossip, per
:class:`~repro.detect.stack.membership.FailureDetectorConfig`) over the
reliable transport and nothing else — no token, no candidates, no
elections (``_fd_can_take_over = False``).

:func:`run_membership_trial` spins up ``n`` hosts, crash-stops one of
them, and reports each survivor's *detection time* — the first instant
the victim left its alive set — alongside the run's liveness bytes.
``benchmarks/membership_scale.py`` sweeps this over group sizes to
record the O(N) vs O(N²) traffic separation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.detect.stack.membership import (
    FailureDetectorConfig,
    FailureDetectorMixin,
)
from repro.detect.stack.transport import ReliableEndpoint
from repro.simulation.actors import Actor
from repro.simulation.faults import CrashEvent, FaultPlan
from repro.simulation.kernel import Kernel

__all__ = ["MembershipHost", "MembershipTrial", "run_membership_trial"]


class MembershipHost(FailureDetectorMixin, ReliableEndpoint, Actor):
    """An actor that runs only the membership layer, for ``duration``.

    Every peer starts presumed-alive (the heartbeat path pre-seeds
    ``_fd_last_heard`` so both modes begin from the same belief), and
    the host records the first time each peer slot drops out of its
    alive set in ``suspected_at``.
    """

    _fd_can_take_over = False

    def __init__(
        self,
        name: str,
        slot: int,
        peers: dict[int, str],
        config: FailureDetectorConfig,
        duration: float,
    ) -> None:
        super().__init__(name)
        self._init_reliability(None)
        self._init_failure_detector(config)
        self._slot = slot
        self._peers = dict(peers)
        self._duration = duration
        self.suspected_at: dict[int, float] = {}
        for peer_slot in self._peers:
            self._fd_last_heard[peer_slot] = 0.0

    # -- membership-layer host hooks -----------------------------------
    def _fd_slot(self) -> int:
        return self._slot

    def _fd_peers(self) -> dict[int, str]:
        return self._peers

    # -- run loop ------------------------------------------------------
    def _note_suspicions(self) -> None:
        alive = self._fd_alive_slots(self.now)
        for peer_slot in self._peers:
            if peer_slot not in alive and peer_slot not in self.suspected_at:
                self.suspected_at[peer_slot] = self.now

    def run(self):
        while self.now < self._duration:
            msg = yield from self._fd_receive(f"{self.name} membership idle")
            if msg is not None:
                code = yield from self._dispatch_common(msg)
                if code == "unhandled":
                    yield from self._dispatch_fd(msg)
            self._note_suspicions()


@dataclass(frozen=True, slots=True)
class MembershipTrial:
    """One membership-layer run's measurements."""

    n: int
    membership: str
    liveness_bytes: int
    detection_times: tuple[float, ...]
    crash_at: float

    @property
    def max_detection_latency(self) -> float:
        """Worst survivor's time-to-suspicion for the crashed member."""
        if not self.detection_times:
            return float("inf")
        return max(self.detection_times) - self.crash_at

    @property
    def all_detected(self) -> bool:
        return len(self.detection_times) == self.n - 1


def run_membership_trial(
    n: int,
    config: FailureDetectorConfig,
    *,
    duration: float = 40.0,
    crash_at: float = 10.0,
    seed: int = 0,
) -> MembershipTrial:
    """Run ``n`` membership hosts, crash-stop member 1, measure.

    Returns the survivors' per-host detection times for the victim and
    the whole run's liveness bytes (heartbeats + pings/acks/ping-reqs,
    including piggybacked membership entries).
    """
    if n < 2:
        raise ValueError("membership trial needs n >= 2")
    # The detector must keep ticking for the whole trial — there is no
    # protocol traffic to fall back on, so disable the idle cutoff.
    config = replace(config, max_idle_rounds=10**9)
    names = {slot: f"member-{slot}" for slot in range(n)}
    victim_slot = 1
    plan = FaultPlan(crashes=(CrashEvent(names[victim_slot], crash_at),))
    kernel = Kernel(seed=seed, faults=plan, max_steps=50_000_000)
    hosts = []
    for slot, name in names.items():
        peers = {s: p for s, p in names.items() if s != slot}
        host = MembershipHost(name, slot, peers, config, duration)
        kernel.add_actor(host)
        hosts.append(host)
    kernel.run(until=duration * 2)
    detection_times = tuple(
        sorted(
            host.suspected_at[victim_slot]
            for host in hosts
            if host._slot != victim_slot
            and victim_slot in host.suspected_at
        )
    )
    return MembershipTrial(
        n=n,
        membership=config.membership,
        liveness_bytes=kernel.metrics.liveness_bytes(),
        detection_times=detection_times,
        crash_at=crash_at,
    )
