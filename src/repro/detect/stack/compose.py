"""Stack layer glue — compose a detection core with the protocol stack.

A *detection core* is a plain paper monitor (Fig. 3/4/5 pseudocode over
``send``/``receive``).  A *hardened* monitor is not a hand-written
subclass but a **composition** built by :func:`harden`::

    Hardened = harden(TokenVCMonitor)          # registered glue
    Hardened = harden(TokenVCMonitor, glue=MyGlue)

The composition stacks, top to bottom:

1. the per-algorithm **glue** (a :class:`StackGlue` subclass declaring
   the handful of hooks the algorithm must provide — how to deep-copy a
   token frame, how one visit runs, how its outcome commits);
2. :class:`StackedMonitor` — the shared hardened *run loop* (layer 2
   membership over layer 1 transport), identical for every token
   detector;
3. the unmodified detection core.

``StackedMonitor.run`` is the one state machine that used to be
copy-pasted into every ``Hardened*Monitor``: drive un-acked transfers,
process held token frames (dropping ones deposed by a takeover
election), reliably halt once the verdict is in, linger for straggler
retransmissions, and otherwise block on the failure-detector receive.
All of its state lives in persisted actor attributes, so a crash/restart
re-enters ``run`` and resumes from wherever the persisted state says the
protocol was.

The same loop hosts multiplexed glues: the multi-predicate service's
:class:`~repro.detect.service.dispatcher.ServiceGlue` demuxes each held
frame on its ``pred_id`` tag to a per-predicate machine, so N registered
predicates share one endpoint, one run loop, and one candidate stream —
``_handle_frame``/``_resolve_frame`` never assumed one token per host.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.detect.stack.membership import (
    FailureDetectorConfig,
    FailureDetectorMixin,
)
from repro.detect.stack.transport import (
    AdaptiveRetryPolicy,
    ReliableEndpoint,
    RetryPolicy,
    TokenFrame,
)

__all__ = [
    "StackedMonitor",
    "StackGlue",
    "harden",
    "register_glue",
    "hardened_variant",
]


class StackedMonitor(FailureDetectorMixin, ReliableEndpoint):
    """The shared hardened run loop over the transport + membership layers.

    Hosts (the per-algorithm glue) implement:

    ``_handle_frame(frame)``
        generator running one (possibly crash-resumed) token visit over
        the held frame; returns ``"halt"`` / ``"gave_up"`` (loop back to
        the run-loop head) or an algorithm outcome code for
        ``_resolve_frame``;
    ``_resolve_frame(frame, code)``
        plain method (NO yields — it must be atomic with the frame's
        retirement) committing the visit's outcome: set ``detected`` /
        ``aborted``, or queue the forward via ``_begin_transfer``;
    ``_halt_targets()``
        every actor the declaring monitor must reliably halt;
    ``_fd_slot()`` / ``_fd_peers()``
        the membership layer's election identity hooks.

    Optional overrides: ``_stack_finished()`` (when to start the halt
    wave; defaults to ``detected or aborted``), ``_stack_idle()`` (a
    plain method run when there is nothing held or pending — the §3.5
    leader starts merge rounds here; return True when it advanced
    state), and ``_idle_description()`` for the blocking receive's
    diagnostic label.
    """

    def _stack_init(
        self,
        retry: RetryPolicy | AdaptiveRetryPolicy | None = None,
        failure_detector: FailureDetectorConfig | None = None,
    ) -> None:
        """Initialise both stack layers (call once from ``__init__``)."""
        self._init_reliability(retry)
        self._init_failure_detector(failure_detector)

    # ------------------------------------------------------------------
    # Host hooks
    # ------------------------------------------------------------------
    def _handle_frame(self, frame: TokenFrame):
        raise NotImplementedError

    def _resolve_frame(self, frame: TokenFrame, code: str) -> None:
        raise NotImplementedError

    def _halt_targets(self) -> list[str]:
        raise NotImplementedError

    def _stack_finished(self) -> bool:
        """Whether this monitor owns a verdict and must halt the run."""
        return bool(
            getattr(self, "detected", False) or getattr(self, "aborted", False)
        )

    def _stack_idle(self) -> bool:
        """Advance algorithm state while nothing is held or pending.

        Plain method (no yields).  Returns True when it changed state
        (the loop re-examines everything); False falls through to the
        blocking failure-detector receive.
        """
        return False

    def _idle_description(self) -> str:
        return f"{self.name} awaiting token"

    # ------------------------------------------------------------------
    # Dispatch: transport first, then membership, then the algorithm.
    # ------------------------------------------------------------------
    def _dispatch(self, msg):
        code = yield from self._dispatch_common(msg)
        if code == "unhandled":
            code = yield from self._dispatch_fd(msg)
        return code

    # ------------------------------------------------------------------
    # The run loop every hardened token detector shares.
    # ------------------------------------------------------------------
    def run(self):
        while True:
            if self.halted:
                yield from self._linger()
                return
            if self._stack_finished():
                yield from self._reliable_halt(self._halt_targets())
                yield from self._linger()
                return
            if self.gave_up:
                return
            if self._pending_out:
                yield from self._drive_transfers()
                continue  # the loop head re-examines halted / gave_up
            if self._held:
                if self._drop_stale_held():
                    continue  # a takeover deposed the held frame's epoch
                frame = self._held[0]  # peek: popped only once resolved
                code = yield from self._handle_frame(frame)
                if code in ("halt", "gave_up"):
                    continue
                if frame.epoch < self._epoch:
                    # An election concluded while this visit was yielded;
                    # the regenerated token supersedes this frame.
                    self._drop_stale_held()
                    continue
                # One atomic block (no yields): the visit's outcome and
                # the frame's retirement commit together, so a crash
                # never strands a half-resolved token.
                self._resolve_frame(frame, code)
                self._held.popleft()
                continue
            if self._stack_idle():
                continue
            msg = yield from self._fd_receive(self._idle_description())
            if msg is None:
                if self.halted:
                    return  # halt arrived during a detector tick
                continue  # idle heartbeat tick; re-examine state
            yield from self._dispatch(msg)


class StackGlue:
    """Base for per-algorithm glue classes used by :func:`harden`.

    Accepts the detection core's positional/keyword arguments untouched,
    peels off the stack options, initialises the core and both stack
    layers, then calls :meth:`_init_visit_state` for the algorithm's
    persisted crash-resume attributes.
    """

    def __init__(
        self,
        *args,
        retry: RetryPolicy | AdaptiveRetryPolicy | None = None,
        failure_detector: FailureDetectorConfig | None = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self._stack_init(retry, failure_detector)
        self._init_visit_state()

    def _init_visit_state(self) -> None:
        """Persisted per-visit attributes (overridden by the glue)."""


_GLUE: dict[type, type] = {}
_COMPOSED: dict[tuple[type, type], type] = {}


def register_glue(core: type, glue: type) -> None:
    """Register ``glue`` as the default stack glue for ``core``."""
    _GLUE[core] = glue


def harden(core: type, *, glue: type | None = None, name: str | None = None) -> type:
    """The hardened composition of detection core ``core``.

    Composes ``(glue, StackedMonitor, core)`` — per-algorithm hooks over
    the shared run loop over the untouched paper pseudocode — and caches
    the class, so repeated calls return the identical type.  ``glue``
    defaults to the core's registered glue; ``name`` overrides the
    generated class name.
    """
    if glue is None:
        glue = _GLUE.get(core)
        if glue is None:
            raise ConfigurationError(
                f"no stack glue registered for {core.__name__}; "
                f"register_glue() it or pass glue= explicitly"
            )
    cached = _COMPOSED.get((core, glue))
    if cached is not None:
        return cached
    composed = type(
        name or f"Hardened{core.__name__}",
        (glue, StackedMonitor, core),
        {"__module__": glue.__module__, "__doc__": glue.__doc__},
    )
    _COMPOSED[(core, glue)] = composed
    return composed


def hardened_variant(core: type) -> type | None:
    """The registered hardened composition for ``core``, if any."""
    if core in _GLUE:
        return harden(core)
    return None
