"""Stack layer 2 (alternative) — SWIM-style gossip membership.

The heartbeat detector in :mod:`repro.detect.stack.membership` is
all-to-all: every monitor beacons every peer each idle tick, so
liveness traffic grows O(N²) with the monitor-group size.  This module
supplies the scalable replacement — the SWIM construction (randomized
probing with indirect ping-req confirmation and epidemic dissemination;
see the failure-detector and gossip chapters of Aspnes' *Notes on
Theory of Distributed Systems*):

* **Probing** — each idle tick, a monitor pings one peer chosen by a
  shuffled round-robin.  If the direct ping times out it asks ``k``
  other peers to probe the target on its behalf (``ping_req``); only
  when nobody can reach the target is it *suspected*.  Per-node
  liveness load is O(1) per tick regardless of group size.
* **Suspicion with refutation** — a suspected member stays suspect for
  a refutation window before it is *confirmed* dead.  Membership
  updates carry *incarnation numbers*: when a live member learns it is
  suspected, it bumps its incarnation and gossips a fresh ``alive``,
  which overrides the suspicion everywhere.  Precedence is the
  lexicographic order ``(incarnation, status-rank)`` with
  alive < suspect < confirm at equal incarnation — i.e. ``alive(i)``
  overrides ``suspect(j)`` iff ``i > j``, ``suspect(i)`` overrides
  ``alive(j)`` iff ``i >= j``, and ``confirm`` beats both.
* **Dissemination** — updates are not broadcast; they ride as
  *piggyback* payloads on the pings/acks the protocol sends anyway
  (and, via the transport hooks, on token frames).  Each update is
  retransmitted a bounded number of times (≈ O(log N) epidemic rounds)
  and then retired from the buffer.
* **Announcements** — takeover elections and the reliable halt reuse
  the same channel: an :class:`Announcement` gossips "epoch ``e`` is
  being elected by slot ``s``" or "the run halted", so neither needs an
  all-to-all broadcast round.

:class:`SwimState` is a *pure* state machine — no actor, clock or
channel access — so its laws are directly property-testable (see
``tests/property/test_gossip_properties.py``).  The actor-side wiring
lives in :class:`~repro.detect.stack.membership.FailureDetectorMixin`,
selected by ``FailureDetectorConfig(membership="gossip")``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import derive_seed
from repro.common.types import WORD_BITS

__all__ = [
    "PING_KIND",
    "PING_ACK_KIND",
    "PING_REQ_KIND",
    "JOIN_KIND",
    "JOIN_ACK_KIND",
    "STATE_SYNC_KIND",
    "GOSSIP_KINDS",
    "JOIN_KINDS",
    "ALIVE",
    "SUSPECT",
    "CONFIRMED",
    "GossipUpdate",
    "Announcement",
    "Ping",
    "PingAck",
    "PingReq",
    "Join",
    "JoinWelcome",
    "StateSync",
    "SwimState",
    "PIGGYBACK_LIMIT",
    "entries_bits",
]

# Message kinds introduced by the gossip membership layer.
PING_KIND = "ping"            # direct liveness probe
PING_ACK_KIND = "ping_ack"    # probe answer (direct or relayed)
PING_REQ_KIND = "ping_req"    # indirect-probe request to a helper

# Message kinds introduced by the elastic-join handshake.
JOIN_KIND = "join"            # joiner -> seed contact: admit me
JOIN_ACK_KIND = "join_ack"    # seed -> joiner: membership snapshot + epoch
STATE_SYNC_KIND = "state_sync"  # seed -> joiner: anti-entropy bootstrap

GOSSIP_KINDS = frozenset({PING_KIND, PING_ACK_KIND, PING_REQ_KIND})
JOIN_KINDS = frozenset({JOIN_KIND, JOIN_ACK_KIND, STATE_SYNC_KIND})

# Member lifecycle states, in precedence order at equal incarnation.
ALIVE = "alive"
SUSPECT = "suspect"
CONFIRMED = "confirm"

_RANK = {ALIVE: 0, SUSPECT: 1, CONFIRMED: 2}

#: How many piggyback entries a single ping/ack may carry.
PIGGYBACK_LIMIT = 8

_ENTRY_BITS = 2 * WORD_BITS + 2  # (slot-or-epoch, incarnation, 2-bit tag)


@dataclass(frozen=True, slots=True)
class GossipUpdate:
    """One membership assertion: ``slot`` is ``status`` at ``incarnation``.

    ``name`` is carried only for members introduced at runtime (elastic
    join): a receiver that has never heard of ``slot`` can admit it from
    the update alone, which makes join dissemination converge no matter
    the order updates arrive in.  Static members never need it, so
    updates about them stay exactly as small as before.
    """

    slot: int
    status: str
    incarnation: int
    name: str | None = None

    def size_bits(self) -> int:
        if self.name is None:
            return _ENTRY_BITS
        return _ENTRY_BITS + 8 * len(self.name)

    @property
    def key(self) -> tuple:
        """Piggyback-buffer identity (one live entry per member)."""
        return ("member", self.slot)

    @property
    def precedence(self) -> tuple[int, int]:
        """Total order deciding which of two assertions wins."""
        return (self.incarnation, _RANK[self.status])


@dataclass(frozen=True, slots=True)
class Announcement:
    """A gossiped control event: an election or a halt.

    ``kind`` is ``"elect"`` or ``"halt"``; ``epoch`` orders repeated
    announcements of the same kind (higher supersedes); ``slot`` is the
    originator every receiver should answer.
    """

    kind: str
    epoch: int
    slot: int

    def size_bits(self) -> int:
        return _ENTRY_BITS

    @property
    def key(self) -> tuple:
        return ("announce", self.kind)

    @property
    def precedence(self) -> tuple[int, int]:
        return (self.epoch, 0)


def entries_bits(entries) -> int:
    """Accounting size of a piggyback payload."""
    return sum(entry.size_bits() for entry in entries)


@dataclass(frozen=True, slots=True)
class Ping:
    """A direct probe.  ``reply_to`` names the slot the ack must reach
    (the prober itself, or — when relayed by a ping-req helper — the
    original requester).  ``holding`` advertises token possession, so
    receivers treat the probe as token activity (no spurious takeover
    while a live holder is merely slow)."""

    seq: int
    slot: int
    incarnation: int
    reply_to: int
    holding: bool = False
    updates: tuple = ()

    def size_bits(self) -> int:
        return 4 * WORD_BITS + 1 + entries_bits(self.updates)


@dataclass(frozen=True, slots=True)
class PingAck:
    """A probe answer, sent straight to the probe's ``reply_to``."""

    seq: int
    slot: int
    incarnation: int
    holding: bool = False
    updates: tuple = ()

    def size_bits(self) -> int:
        return 3 * WORD_BITS + 1 + entries_bits(self.updates)


@dataclass(frozen=True, slots=True)
class PingReq:
    """An indirect-probe request: "ping ``target`` for me"."""

    seq: int
    slot: int
    incarnation: int
    target: int
    updates: tuple = ()

    def size_bits(self) -> int:
        return 4 * WORD_BITS + entries_bits(self.updates)


@dataclass(frozen=True, slots=True)
class Join:
    """The handshake request a brand-new monitor sends its seed contact.

    ``slot`` is the joiner's own (globally fresh) slot number, chosen by
    the harness so it cannot collide with any existing member; ``name``
    is its actor name, which the seed disseminates so everyone can route
    to it.
    """

    slot: int
    name: str
    incarnation: int = 0

    def size_bits(self) -> int:
        return 2 * WORD_BITS + 8 * len(self.name)


@dataclass(frozen=True, slots=True)
class JoinWelcome:
    """The seed contact's reply: a full membership snapshot.

    ``members`` lists ``(slot, name, incarnation, status)`` for every
    member the seed currently knows (itself and the joiner included);
    ``epoch`` is the takeover-election epoch at the seed, so the joiner
    answers election rounds at the right number from its first message.
    """

    members: tuple
    epoch: int

    def size_bits(self) -> int:
        return WORD_BITS + sum(
            _ENTRY_BITS + 8 * len(name) for _, name, _, _ in self.members
        )


@dataclass(frozen=True, slots=True)
class StateSync:
    """Anti-entropy bootstrap shipped to a joiner after its welcome.

    ``frames`` are the seed's persisted token frames (opaque to this
    layer — the transport owns their shape); ``baselines`` are
    ``(stream_name, acked_seq)`` pairs giving the seed's cumulative
    candidate-ack position per feeder stream, so the joiner subscribes
    at the correct sequence numbers instead of demanding history the
    feeders may have retired.  ``frame_bits`` is the accounting size of
    ``frames``, computed by the sender because this layer cannot size
    transport payloads.
    """

    frames: tuple = ()
    baselines: tuple = ()
    frame_bits: int = 0

    def size_bits(self) -> int:
        return (
            WORD_BITS
            + sum(WORD_BITS + 8 * len(stream) for stream, _ in self.baselines)
            + self.frame_bits
        )


@dataclass
class _Buffered:
    """One piggyback-buffer cell: the entry plus its send count."""

    entry: object
    times_sent: int = 0


class SwimState:
    """The pure SWIM membership state machine for one monitor.

    Deterministic: every "random" choice (probe order, helper
    selection) is a hash-derived function of ``seed`` and a draw label,
    never a stateful RNG — so runs replay bit-identically and sweep
    results are worker-invariant.

    All state lives in plain attributes on this object, which itself
    lives in a persisted actor attribute: a monitor crash/restart keeps
    the membership table, and :meth:`rejoin` bumps the incarnation so
    the restarted member can refute any suspicion it accrued while
    down.
    """

    def __init__(
        self,
        slot: int,
        peers,
        *,
        fanout: int = 3,
        seed: int = 0,
        names: dict[int, str] | None = None,
    ):
        self.slot = slot
        self.peers: tuple[int, ...] = tuple(sorted(set(peers) - {slot}))
        self.fanout = max(1, int(fanout))
        self.seed = seed
        self.incarnation = 0
        #: Actor names for members introduced at runtime (elastic join);
        #: static members are routable without one, so updates about
        #: them never pay the name bytes.
        self.names: dict[int, str] = dict(names) if names else {}
        self.table: dict[int, GossipUpdate] = {
            s: GossipUpdate(s, ALIVE, 0, self.names.get(s))
            for s in self.peers
        }
        self.table[slot] = GossipUpdate(slot, ALIVE, 0, self.names.get(slot))
        self._introduced: list[tuple[int, str]] = []
        #: Retransmissions before a buffered entry is retired — ≈ the
        #: epidemic round count needed to reach everyone w.h.p.
        self.retransmit_budget = max(6, 2 * self.fanout)
        self._suspect_since: dict[int, float] = {}
        self._buffer: dict[tuple, _Buffered] = {}
        self._announced: dict[str, Announcement] = {}
        self._next_seq = 0
        self._order: list[int] = []
        self._pos = 0
        self._shuffles = 0
        self.probe_target: int | None = None
        self.probe_seq: int | None = None
        self.probe_stage: str | None = None
        self.probe_deadline: float | None = None

    # ------------------------------------------------------------------
    # Membership table
    # ------------------------------------------------------------------
    def status(self, slot: int) -> str:
        return self.table[slot].status

    def alive_slots(self) -> set[int]:
        """Slots not currently suspected or confirmed dead (incl. self)."""
        return {self.slot} | {
            s for s in self.peers if self.table[s].status == ALIVE
        }

    def apply(self, update: GossipUpdate, now: float) -> bool:
        """Fold one assertion into the table (no re-gossip); True if it won."""
        return self._apply(update, now, buffer=False)

    def _apply(self, update: GossipUpdate, now: float, *, buffer: bool) -> bool:
        current = self.table.get(update.slot)
        if current is None:
            if update.name is None or update.slot == self.slot:
                return False  # unknown member (defensive: foreign slot)
            # A named update about a slot we have never heard of is a
            # runtime introduction: admit the member and keep gossiping
            # the update so the introduction spreads epidemically.
            self.peers = tuple(sorted((*self.peers, update.slot)))
            self.names[update.slot] = update.name
            self.table[update.slot] = update
            if update.status == SUSPECT:
                self._suspect_since.setdefault(update.slot, now)
            if buffer:
                self._admit(update)
            self._introduced.append((update.slot, update.name))
            return True
        if update.name is not None:
            self.names.setdefault(update.slot, update.name)
        if update.precedence <= current.precedence:
            return False
        self.table[update.slot] = update
        if update.status == SUSPECT:
            self._suspect_since.setdefault(update.slot, now)
        else:
            self._suspect_since.pop(update.slot, None)
        if buffer:
            self._admit(update)
        return True

    # ------------------------------------------------------------------
    # Piggyback buffer
    # ------------------------------------------------------------------
    def _admit(self, entry) -> None:
        """Admit ``entry`` for dissemination, superseding any buffered
        entry with the same key (and resetting its send count)."""
        cell = self._buffer.get(entry.key)
        if cell is not None and entry.precedence <= cell.entry.precedence:
            return
        self._buffer[entry.key] = _Buffered(entry)

    @staticmethod
    def _buffer_rank(item):
        key, cell = item
        return (cell.times_sent, key[0], str(key[1]).zfill(12))

    def piggyback(self, limit: int, *, membership_only: bool = False) -> tuple:
        """Up to ``limit`` least-sent buffered entries, charging each
        selection against its retransmit budget.

        ``membership_only`` restricts the selection to
        :class:`GossipUpdate` entries — token frames carry membership
        state but never announcements, because frame ingestion cannot
        send the replies announcements demand.
        """
        chosen = []
        for key, cell in sorted(self._buffer.items(), key=self._buffer_rank):
            if len(chosen) >= limit:
                break
            if membership_only and key[0] != "member":
                continue
            chosen.append(cell.entry)
            cell.times_sent += 1
        for key in [
            k for k, cell in self._buffer.items()
            if cell.times_sent >= self.retransmit_budget
        ]:
            del self._buffer[key]
        return tuple(chosen)

    # ------------------------------------------------------------------
    # Probe lifecycle
    # ------------------------------------------------------------------
    def new_seq(self) -> int:
        self._next_seq += 1
        return self._next_seq

    def next_target(self) -> int | None:
        """The next probe target: shuffled round-robin over peers not
        yet confirmed dead (SWIM's time-bounded-detection trick)."""
        candidates = [
            s for s in self.peers if self.table[s].status != CONFIRMED
        ]
        if not candidates:
            return None
        for _ in range(2):  # second pass runs after a reshuffle
            while self._pos < len(self._order):
                slot = self._order[self._pos]
                self._pos += 1
                if self.table[slot].status != CONFIRMED:
                    return slot
            self._shuffles += 1
            self._order = sorted(
                candidates,
                key=lambda s: derive_seed(
                    self.seed, f"probe:{self._shuffles}:{s}"
                ),
            )
            self._pos = 0
        return None  # pragma: no cover - candidates is non-empty above

    def begin_probe(self, target: int, now: float, timeout: float) -> int:
        seq = self.new_seq()
        self.probe_target = target
        self.probe_seq = seq
        self.probe_stage = "direct"
        self.probe_deadline = now + timeout
        return seq

    def probe_due(self, now: float) -> bool:
        return (
            self.probe_deadline is not None and now >= self.probe_deadline
        )

    def escalate(self, now: float, timeout: float, k: int) -> tuple[int, ...]:
        """Pick up to ``k`` helpers for an indirect probe of the current
        target; extends the probe deadline when any helper exists."""
        target = self.probe_target
        helpers = [
            s for s in self.peers
            if s != target and self.table[s].status == ALIVE
        ]
        helpers.sort(
            key=lambda s: derive_seed(
                self.seed, f"helper:{self.probe_seq}:{s}"
            )
        )
        chosen = tuple(helpers[:k])
        if chosen:
            self.probe_stage = "indirect"
            self.probe_deadline = now + timeout
        return chosen

    def fail_probe(self, now: float) -> int | None:
        """Give up on the current probe; suspect the target if it was
        still considered alive.  Returns the newly suspected slot."""
        target = self.probe_target
        self._clear_probe()
        if target is None:
            return None
        current = self.table[target]
        if current.status != ALIVE:
            return None
        self._apply(
            GossipUpdate(
                target, SUSPECT, current.incarnation, self.names.get(target)
            ),
            now, buffer=True,
        )
        return target

    def on_ack(self, slot: int, seq: int) -> bool:
        """Clear the outstanding probe if this ack answers it."""
        if seq == self.probe_seq and slot == self.probe_target:
            self._clear_probe()
            return True
        return False

    def _clear_probe(self) -> None:
        self.probe_target = None
        self.probe_seq = None
        self.probe_stage = None
        self.probe_deadline = None

    def promote_due(self, now: float, window: float) -> list[int]:
        """Confirm every suspect whose refutation window has expired."""
        confirmed = []
        for slot, since in sorted(self._suspect_since.items()):
            if now - since < window:
                continue
            update = self.table[slot]
            self._apply(
                GossipUpdate(
                    slot, CONFIRMED, update.incarnation, self.names.get(slot)
                ),
                now, buffer=True,
            )
            confirmed.append(slot)
        return confirmed

    # ------------------------------------------------------------------
    # Refutation / rejoin / announcements
    # ------------------------------------------------------------------
    def rejoin(self) -> None:
        """Come back after a crash: a fresh incarnation refutes any
        suspicion (or confirmation) accrued while down."""
        self.incarnation += 1
        me = GossipUpdate(
            self.slot, ALIVE, self.incarnation, self.names.get(self.slot)
        )
        self.table[self.slot] = me
        self._admit(me)

    # ------------------------------------------------------------------
    # Elastic membership
    # ------------------------------------------------------------------
    def add_member(
        self, slot: int, name: str, *, incarnation: int = 0,
        announce: bool = True,
    ) -> bool:
        """Admit a genuinely new, named member (elastic join).

        Called by the seed contact when a ``join`` arrives, and by the
        joiner itself when folding in its welcome snapshot.  With
        ``announce`` the introduction enters the piggyback buffer, so it
        reaches every other member at O(1) dedicated bytes — no
        broadcast round.  Returns False when the slot is already known
        (a retransmitted join), which keeps the handshake idempotent.
        """
        if slot == self.slot or slot in self.table:
            if name:
                self.names.setdefault(slot, name)
            return False
        update = GossipUpdate(slot, ALIVE, incarnation, name)
        self.peers = tuple(sorted((*self.peers, slot)))
        self.names[slot] = name
        self.table[slot] = update
        if announce:
            self._admit(update)
        return True

    def drain_introductions(self) -> list[tuple[int, str]]:
        """Members introduced via gossip since the last drain, as
        ``(slot, name)`` pairs — the actor mixin registers routes for
        them."""
        drained = self._introduced
        self._introduced = []
        return drained

    def announce(self, kind: str, epoch: int, slot: int) -> bool:
        """Originate (or relay) an announcement; True if it was fresh."""
        return self._admit_announcement(Announcement(kind, epoch, slot))

    def _admit_announcement(self, entry: Announcement) -> bool:
        current = self._announced.get(entry.kind)
        if current is not None and entry.epoch <= current.epoch:
            return False
        self._announced[entry.kind] = entry
        self._admit(entry)
        return True

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, entries, now: float) -> list[tuple]:
        """Fold received piggyback entries in; return actionable events.

        Events: ``("refuted", incarnation)`` — this member was suspected
        and bumped its incarnation; ``("elect", epoch, slot)`` /
        ``("halt", epoch, slot)`` — a fresh announcement needing an
        actor-level response; ``("joined", slot, name)`` — a named
        update introduced a member this monitor had never heard of.
        Winning membership updates are re-admitted to the buffer, which
        is what makes dissemination epidemic.
        """
        events: list[tuple] = []
        for entry in entries:
            if isinstance(entry, Announcement):
                if self._admit_announcement(entry):
                    events.append((entry.kind, entry.epoch, entry.slot))
                continue
            if entry.slot == self.slot:
                if (
                    entry.status != ALIVE
                    and entry.incarnation >= self.incarnation
                ):
                    self.incarnation = entry.incarnation + 1
                    me = GossipUpdate(
                        self.slot, ALIVE, self.incarnation,
                        self.names.get(self.slot),
                    )
                    self.table[self.slot] = me
                    self._admit(me)
                    events.append(("refuted", self.incarnation))
                continue
            self._apply(entry, now, buffer=True)
        for slot, name in self.drain_introductions():
            events.append(("joined", slot, name))
        return events
