"""Stack layer 1 — transport: loss-, duplication- and crash-tolerant.

The paper's protocols assume reliable channels and ever-live monitors;
this module supplies the machinery that lets the *hardened* compositions
of the token detectors (see :mod:`repro.detect.stack.compose`) survive
the fault model of :mod:`repro.simulation.faults` while still reporting
**exactly the first consistent cut** of the fault-free run:

* **Application -> monitor** traffic is sequence-numbered
  (:class:`Sequenced`), retransmitted by the :class:`ReliableFeeder` on
  ack timeout with exponential backoff, deduplicated and re-ordered by
  the monitor-side :class:`CandidateInbox`, and acknowledged
  cumulatively (one ack per stream in the fault-free case, not one per
  message — this is what keeps the hardened 0%-fault overhead low).
* **Token transfer** is hop-by-hop reliable: every token message is
  wrapped in a :class:`TokenFrame` carrying a monotonically increasing
  hop number; the receiver persists the highest hop seen, acks every
  frame immediately (duplicates are re-acked and discarded), and the
  sender retransmits its persisted copy until acked — a
  ``Receive(timeout=...)`` heartbeat with exponential backoff.  Token
  *regeneration* after a crash falls out of the same design: both
  endpoints of a transfer keep the frame in persisted local state, so
  whichever side survives (or restarts) re-injects it.
* **Termination** is a reliable halt: the declaring monitor retransmits
  ``halt`` until every peer (and every feeder) acks, with a bounded
  retry budget so a permanently-dead peer degrades the run instead of
  livelocking it.

Because actor attributes survive a kernel crash/restart (they model
persisted local state) and generator code between yields is atomic, the
hardened monitors are written as state machines over persisted
attributes: :meth:`~repro.simulation.actors.Actor.restart` re-enters
``run``, which resumes from wherever the persisted state says the
protocol was.

Retransmission is bounded by :class:`RetryPolicy.max_attempts`; under
any fault schedule with eventual delivery the bound is never reached
(each retry succeeds independently with the channel's delivery
probability), and without eventual delivery it converts a livelock into
a reported ``degraded`` outcome.

Allocation discipline: every wire record here (:class:`Sequenced`,
:class:`TokenFrame`, :class:`Tagged`) is a frozen, slotted dataclass,
and the :class:`ReliableFeeder` packs its whole stream into one
``(frame, kind, size_bits, time)`` tuple list at construction — first
transmission and every retransmission walk that packed list by index,
so the steady-state hot path allocates nothing per frame.  Candidate
payloads arrive already projected to plain int tuples (see
``VectorClock.project``), interned per width, which is what keeps
n >= 256 sweeps inside CI wall budgets.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_seed
from repro.common.types import WORD_BITS
from repro.detect.base import HALT_KIND, TOKEN_KIND
from repro.simulation.actors import Actor
from repro.simulation.replay import CANDIDATE_KIND, END_OF_TRACE_KIND, FeedItem

__all__ = [
    "CAND_ACK_KIND",
    "TOKEN_ACK_KIND",
    "HALT_ACK_KIND",
    "FEED_JOIN_KIND",
    "FeedJoin",
    "Sequenced",
    "TokenFrame",
    "Tagged",
    "RetryPolicy",
    "AdaptiveRetryPolicy",
    "AdaptiveSchedule",
    "CandidateInbox",
    "ReliableFeeder",
    "ReliableInjector",
    "ReliableEndpoint",
    "TokenInjector",
    "retry_schedule",
    "token_ack_bits",
]

# Message kinds introduced by the reliability layer.
CAND_ACK_KIND = "cand_ack"    # cumulative app-stream ack, monitor -> feeder
TOKEN_ACK_KIND = "token_ack"  # per-hop token transfer ack
HALT_ACK_KIND = "halt_ack"    # termination ack, peer -> declaring monitor
FEED_JOIN_KIND = "feed_join"  # subscribe a joiner, monitor -> feeder

ACK_BITS = WORD_BITS
TOKEN_ACK_BITS = 3 * WORD_BITS  # (gid, epoch, hop)
HALT_ACK_BITS = 1


def token_ack_bits(frame: "TokenFrame") -> int:
    """Accounting size of the ack for ``frame``: one word per identity
    component.  Default frames keep the historical ``TOKEN_ACK_BITS``
    (3 words); service-multiplexed frames carry a ``pred_id`` word too.
    """
    return WORD_BITS * len(frame.key)


@dataclass(frozen=True, slots=True)
class FeedJoin:
    """Monitor -> feeder control: open a second stream to ``subscriber``.

    Sent by a monitor whose elastic-join handshake admitted a new
    member; the feeder starts the subscriber's cumulative-ack cursor at
    ``baseline`` (the monitor's own ack at handshake time), so the
    joiner receives exactly the suffix it synced its inbox to expect.
    """

    subscriber: str
    baseline: int

    def size_bits(self) -> int:
        return WORD_BITS + 8 * len(self.subscriber)


def _unit_draw(seed: int, label: str) -> float:
    """A deterministic draw in [0, 1) from ``(seed, label)``.

    Hash-derived (not a stateful RNG) so a jittered timeout is a pure
    function of the policy seed, the drawing actor and the draw index —
    stable across processes and immune to call-order perturbations.
    """
    return derive_seed(seed, label) / 2**64


@dataclass(frozen=True, slots=True)
class Sequenced:
    """A sequence-numbered app->monitor payload (1-based, per feeder).

    The end-of-trace marker travels as the ``final`` item of the stream
    so that it, too, is retransmitted until acknowledged.
    """

    seq: int
    payload: object
    final: bool = False


@dataclass(frozen=True, slots=True)
class TokenFrame:
    """A token message wrapped for reliable hop-by-hop transfer.

    ``hop`` increases by one on every forward of the same logical token;
    ``gid`` distinguishes independent tokens (the multi-token algorithm
    runs one hop sequence per group).  ``epoch`` is bumped by takeover
    elections (see :mod:`repro.detect.stack.membership`): receivers order
    frames lexicographically by ``(epoch, hop)``, so a token regenerated
    in a later epoch supersedes every copy of its predecessor and stale
    frames from a deposed epoch are ack-and-discarded on receipt.
    ``(gid, epoch, hop)`` is the frame's identity for dedup and acks.

    ``gossip`` is an opaque piggyback payload stamped at transmission
    time by the membership layer (empty outside gossip mode); it is not
    part of the frame's identity and is not forwarded with the token.

    ``pred_id`` tags frames belonging to a registered predicate of the
    multi-predicate service (:mod:`repro.detect.service`): the service
    multiplexes one token machine per predicate over the same
    ``Sequenced`` streams, and the demux routes on this tag.  The
    default ``pred_id == 0`` (single-predicate runs) keeps the identity
    a 3-tuple, so every pre-service frame, ack and dedup key is
    byte-identical to before the tag existed.
    """

    hop: int
    body: object
    gid: int = 0
    epoch: int = 0
    gossip: tuple = ()
    pred_id: int = 0

    @property
    def key(self) -> tuple[int, ...]:
        """The frame identity carried by acks (3- or 4-tuple)."""
        if self.pred_id:
            return (self.pred_id, self.gid, self.epoch, self.hop)
        return (self.gid, self.epoch, self.hop)

    @property
    def order(self) -> tuple[int, int]:
        """The frame's position in its gid's total order."""
        return (self.epoch, self.hop)


@dataclass(frozen=True, slots=True)
class Tagged:
    """A payload tagged with a request id, for exactly-once request/reply.

    Used by the hardened direct-dependence polls: a retransmitted poll
    carries the same tag, and the polled monitor replays its cached
    response instead of re-applying the state change.
    """

    tag: tuple
    payload: object


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Fixed ack-timeout and exponential-backoff retransmission schedule.

    ``timeout(attempt)`` grows geometrically from ``base_timeout`` by
    ``factor`` up to ``cap``.  ``max_attempts`` bounds every retransmit
    loop so a permanently-unreachable peer yields a *degraded* run
    instead of a livelock.  ``jitter`` (opt-in, default off) spreads each
    timeout by up to ``±jitter`` of its value, deterministically from
    ``jitter_seed`` and the drawing actor's name, so synchronized retry
    storms decorrelate without sacrificing replayability.
    """

    base_timeout: float = 6.0
    factor: float = 2.0
    cap: float = 48.0
    max_attempts: int = 25
    jitter: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        for attr in ("base_timeout", "factor", "cap", "jitter"):
            value = getattr(self, attr)
            if not math.isfinite(value):
                raise ConfigurationError(
                    f"{attr} must be finite, got {value}"
                )
        if self.base_timeout <= 0:
            raise ConfigurationError(
                f"base_timeout must be > 0, got {self.base_timeout}"
            )
        if self.factor < 1.0:
            raise ConfigurationError(f"factor must be >= 1, got {self.factor}")
        if self.cap < self.base_timeout:
            raise ConfigurationError("cap must be >= base_timeout")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )

    def timeout(self, attempt: int, salt: str = "") -> float:
        """The ack timeout for retransmission round ``attempt`` (0-based).

        ``salt`` (normally the retransmitting actor's name) decorrelates
        the jitter streams of different actors; it is unused when
        ``jitter`` is off.
        """
        try:
            raw = self.base_timeout * self.factor**attempt
        except OverflowError:
            raw = self.cap
        value = min(self.cap, raw)
        if self.jitter:
            draw = _unit_draw(self.jitter_seed, f"{salt}:{attempt}")
            value *= 1.0 + self.jitter * (2.0 * draw - 1.0)
        return value

    def schedule(self, name: str) -> "_FixedSchedule":
        """A per-actor view of this policy (stateless; shared interface
        with :meth:`AdaptiveRetryPolicy.schedule`)."""
        return _FixedSchedule(self, name)


@dataclass(frozen=True, slots=True)
class AdaptiveRetryPolicy:
    """RTT-adaptive retransmission schedule (Jacobson/Karn style).

    Each actor derives a mutable :class:`AdaptiveSchedule` via
    :meth:`schedule`; the schedule estimates SRTT/RTTVAR from ack
    round-trips over *simulated* time and computes the retransmission
    timeout as ``SRTT + k·RTTVAR`` with exponential backoff on repeated
    timeouts, clamped to ``[min_timeout, cap]``.  Karn's rule is
    enforced by the schedule's send/ack bookkeeping: a frame that was
    ever retransmitted never contributes an RTT sample, so retransmit
    ambiguity cannot corrupt the estimator.

    Until the first sample arrives the timeout equals ``initial_timeout``
    (the fixed policy's default), which keeps fault-free runs — where no
    retransmission timer ever fires — byte-identical to the fixed
    schedule.  ``jitter`` (a fraction, default ±10%) decorrelates
    synchronized retry storms; draws are deterministic per ``seed`` and
    actor name.
    """

    initial_timeout: float = 6.0
    min_timeout: float = 0.5
    cap: float = 48.0
    alpha: float = 0.125
    beta: float = 0.25
    k: float = 4.0
    backoff_factor: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    max_attempts: int = 25

    def __post_init__(self) -> None:
        for attr in (
            "initial_timeout", "min_timeout", "cap", "alpha", "beta", "k",
            "backoff_factor", "jitter",
        ):
            value = getattr(self, attr)
            if not math.isfinite(value):
                raise ConfigurationError(f"{attr} must be finite, got {value}")
        if self.min_timeout <= 0:
            raise ConfigurationError(
                f"min_timeout must be > 0, got {self.min_timeout}"
            )
        if not self.min_timeout <= self.initial_timeout <= self.cap:
            raise ConfigurationError(
                "initial_timeout must lie in [min_timeout, cap]"
            )
        if not 0.0 < self.alpha <= 1.0 or not 0.0 < self.beta <= 1.0:
            raise ConfigurationError("alpha and beta must be in (0, 1]")
        if self.k < 0:
            raise ConfigurationError(f"k must be >= 0, got {self.k}")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")

    def schedule(self, name: str) -> "AdaptiveSchedule":
        """A fresh per-actor estimator; ``name`` keys the jitter stream."""
        return AdaptiveSchedule(self, name)


class _FixedSchedule:
    """Per-actor view of a :class:`RetryPolicy` (no estimator state)."""

    __slots__ = ("policy", "_name")

    def __init__(self, policy: RetryPolicy, name: str) -> None:
        self.policy = policy
        self._name = name

    @property
    def max_attempts(self) -> int:
        return self.policy.max_attempts

    def timeout(self, attempt: int) -> float:
        return self.policy.timeout(attempt, salt=self._name)

    def linger_window(self) -> float:
        """An upper bound on any peer's retransmission gap."""
        return self.policy.cap + self.policy.base_timeout

    # Karn bookkeeping is a no-op for the fixed schedule.
    def on_send(self, key: object, now: float) -> None:
        pass

    def on_ack(self, key: object, now: float) -> None:
        pass

    def forget(self, key: object) -> None:
        pass

    def sample(self, rtt: float) -> None:
        pass


class AdaptiveSchedule:
    """One actor's mutable RTT estimator over an :class:`AdaptiveRetryPolicy`.

    Lives in a persisted actor attribute, so the estimate survives a
    crash/restart along with the rest of the transport state.  The
    send/ack ledger implements Karn's rule: :meth:`on_send` records the
    first transmission time of a frame key and *taints* the key on any
    retransmission; :meth:`on_ack` feeds ``now - first_send`` to
    :meth:`sample` only for untainted keys.
    """

    __slots__ = (
        "policy", "_name", "srtt", "rttvar", "_draws",
        "_sent_at", "_tainted", "samples",
    )

    def __init__(self, policy: AdaptiveRetryPolicy, name: str) -> None:
        self.policy = policy
        self._name = name
        self.srtt: float | None = None
        self.rttvar: float = 0.0
        self._draws = 0
        self._sent_at: dict = {}
        self._tainted: set = set()
        self.samples = 0

    @property
    def max_attempts(self) -> int:
        return self.policy.max_attempts

    # ------------------------------------------------------------------
    # Karn's-rule ledger
    # ------------------------------------------------------------------
    def on_send(self, key: object, now: float) -> None:
        """Record a (re)transmission of ``key`` at simulated time ``now``."""
        if key in self._sent_at:
            self._tainted.add(key)
        else:
            self._sent_at[key] = now

    def on_ack(self, key: object, now: float) -> None:
        """Record the ack for ``key``; sample the RTT iff never re-sent."""
        sent = self._sent_at.pop(key, None)
        tainted = key in self._tainted
        self._tainted.discard(key)
        if sent is not None and not tainted:
            self.sample(now - sent)

    def forget(self, key: object) -> None:
        """Drop ``key`` from the ledger without sampling (frame abandoned)."""
        self._sent_at.pop(key, None)
        self._tainted.discard(key)

    # ------------------------------------------------------------------
    # Jacobson estimator
    # ------------------------------------------------------------------
    def sample(self, rtt: float) -> None:
        """Fold one round-trip measurement into SRTT/RTTVAR."""
        if rtt < 0:  # pragma: no cover - defensive
            return
        p = self.policy
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = (1.0 - p.beta) * self.rttvar + p.beta * abs(
                self.srtt - rtt
            )
            self.srtt = (1.0 - p.alpha) * self.srtt + p.alpha * rtt
        self.samples += 1

    @property
    def rto(self) -> float:
        """The current base retransmission timeout (before backoff)."""
        p = self.policy
        if self.srtt is None:
            return p.initial_timeout
        return min(p.cap, max(p.min_timeout, self.srtt + p.k * self.rttvar))

    def timeout(self, attempt: int) -> float:
        """The (jittered) timeout for retransmission round ``attempt``."""
        p = self.policy
        try:
            raw = self.rto * p.backoff_factor**attempt
        except OverflowError:
            raw = p.cap
        value = min(p.cap, raw)
        if p.jitter:
            self._draws += 1
            draw = _unit_draw(p.seed, f"{self._name}:{self._draws}")
            value *= 1.0 + p.jitter * (2.0 * draw - 1.0)
        return max(p.min_timeout, min(p.cap, value))

    def linger_window(self) -> float:
        """An upper bound on any peer's retransmission gap."""
        return self.policy.cap + self.policy.initial_timeout


def retry_schedule(
    retry: "RetryPolicy | AdaptiveRetryPolicy | None", name: str
):
    """The per-actor schedule for ``retry`` (default: fixed policy)."""
    return (retry or RetryPolicy()).schedule(name)


class CandidateInbox:
    """Dedup / re-order buffer for one monitor's sequenced app stream.

    Lives in a persisted attribute of the hardened monitor, so buffered
    candidates survive a crash even though the kernel mailbox is lost.
    """

    def __init__(self) -> None:
        self._received_upto = 0          # highest contiguous seq received
        self._pending: dict[int, tuple[Sequenced, int]] = {}
        self._queue: deque[tuple[object, int]] = deque()
        self.final_seq: int | None = None

    def accept(self, item: Sequenced, size_bits: int) -> bool:
        """Register an arrival; returns False for duplicates."""
        if item.seq <= self._received_upto or item.seq in self._pending:
            return False
        self._pending[item.seq] = (item, size_bits)
        while True:
            entry = self._pending.pop(self._received_upto + 1, None)
            if entry is None:
                break
            self._received_upto += 1
            got, bits = entry
            if got.final:
                self.final_seq = got.seq
            else:
                self._queue.append((got.payload, bits))
        return True

    def pop(self) -> tuple[object, int] | None:
        """The next in-order candidate ``(payload, size_bits)``, if any."""
        return self._queue.popleft() if self._queue else None

    @property
    def ack(self) -> int:
        """The cumulative ack value: highest contiguous seq received."""
        return self._received_upto

    @property
    def complete(self) -> bool:
        """Whether the whole stream (including end-of-trace) arrived."""
        return self.final_seq is not None and self._received_upto >= self.final_seq

    @property
    def exhausted(self) -> bool:
        """Whether the stream is complete *and* fully consumed."""
        return self.complete and not self._queue

    def fast_forward(self, seq: int) -> int:
        """Adopt a mid-stream baseline: seqs ``<= seq`` count as received.

        Used by an elastic joiner bootstrapping from a peer's anti-
        entropy state sync: the peer already consumed (and acked) the
        prefix, so the joiner's stream starts at ``seq + 1``.  Frames
        that raced ahead of the sync are kept if they extend the
        baseline and dropped if it swallowed them; returns the buffered
        bits released by dropped frames so the caller can settle its
        space gauge.
        """
        if seq <= self._received_upto:
            return 0
        self._received_upto = seq
        released = 0
        for stale in [s for s in self._pending if s <= seq]:
            item, bits = self._pending.pop(stale)
            if item.final:
                self.final_seq = item.seq
            else:
                released += bits
        while True:
            entry = self._pending.pop(self._received_upto + 1, None)
            if entry is None:
                break
            self._received_upto += 1
            got, bits = entry
            if got.final:
                self.final_seq = got.seq
            else:
                self._queue.append((got.payload, bits))
        return released


class ReliableFeeder(Actor):
    """Crash/loss-tolerant replacement for ``SnapshotFeeder``.

    Pipelines the whole sequence-numbered stream at the recorded
    emission times, then waits for the monitor's cumulative ack,
    retransmitting the unacked suffix on timeout with exponential
    backoff.  Exits only when reliably halted by the winning monitor
    (or when the retry budget is exhausted — ``gave_up``).
    """

    def __init__(
        self,
        name: str,
        monitor: str,
        items: list[FeedItem],
        spacing: float = 1.0,
        retry: RetryPolicy | AdaptiveRetryPolicy | None = None,
    ) -> None:
        super().__init__(name)
        if spacing <= 0:
            raise ConfigurationError(f"spacing must be > 0, got {spacing}")
        timed = [i.time for i in items if i.time is not None]
        if timed != sorted(timed):
            raise ConfigurationError("feed item times must be nondecreasing")
        self._monitor = monitor
        self._retry = retry_schedule(retry, name)
        # (frame, kind, size_bits, emission_time)
        self._frames: list[tuple[Sequenced, str, int, float | None]] = [
            (
                Sequenced(i + 1, item.payload),
                CANDIDATE_KIND,
                item.size_bits + WORD_BITS,
                item.time,
            )
            for i, item in enumerate(items)
        ]
        self._frames.append(
            (
                Sequenced(len(items) + 1, None, final=True),
                END_OF_TRACE_KIND,
                1 + WORD_BITS,
                None,
            )
        )
        self._spacing = spacing
        self._acked = 0          # persisted: highest cumulative ack seen
        #: Elastic-join subscribers: ``{name: highest cumulative ack}``,
        #: each started at the baseline its ``feed_join`` carried.
        self._subscribers: dict[str, int] = {}
        self.gave_up = False
        self.subscriber_gave_up = False
        self.halted = False

    def run(self):
        if self.halted:
            # Restarted after being halted: the halt_ack may have been
            # lost along with the crashed mailbox, so answer halt
            # retransmissions instead of exiting into a dead letterbox.
            yield from self._relinger()
            return
        final_seq = len(self._frames)
        # Phase 1: first transmission, paced by the recorded trace times.
        # After a crash-restart already-acked frames are skipped; the
        # monitor's inbox dedups any the feeder re-sends.
        for frame, kind, bits, at in self._frames:
            if at is not None:
                if at > self.now:
                    yield self.sleep(at - self.now)
            elif not frame.final:
                yield self.sleep(self._spacing)
            if frame.seq <= self._acked:
                continue
            self._retry.on_send(frame.seq, self.now)
            yield self.send(self._monitor, frame, kind=kind, size_bits=bits)
        # Phase 2: await the cumulative acks, retransmitting suffixes.
        if (yield from self._await_acks()) == "halted":
            return
        # Phase 3: stream delivered (or given up) — wait to be halted so
        # late retransmission requests never hit a finished actor.  A
        # joiner subscribing after delivery drops back into phase 2 so
        # its suffix is served with the same retransmission guarantees.
        while True:
            msg = yield self.receive(
                HALT_KIND, FEED_JOIN_KIND,
                description=f"{self.name} awaiting halt",
            )
            if msg.corrupted:
                continue
            if msg.kind == FEED_JOIN_KIND:
                self._admit_subscriber(msg.payload)
                yield from self._send_suffix(
                    msg.payload.subscriber,
                    self._subscribers[msg.payload.subscriber],
                )
                if (yield from self._await_acks()) == "halted":
                    return
                continue
            yield from self._acknowledge_halt(msg.src)
            return

    def _admit_subscriber(self, feed: FeedJoin) -> None:
        """Register an elastic-join subscriber (idempotent: a
        retransmitted ``feed_join`` never rewinds the ack cursor)."""
        if feed.subscriber not in self._subscribers:
            self._subscribers[feed.subscriber] = feed.baseline

    def _delivered(self) -> bool:
        """Whether the primary monitor and every subscriber acked it all."""
        final_seq = len(self._frames)
        return self._acked >= final_seq and all(
            acked >= final_seq for acked in self._subscribers.values()
        )

    def _send_suffix(self, dest: str, acked: int, *, karn: bool = False):
        """(Re)send every frame past ``acked`` to ``dest``.

        Index loop, not a slice: retransmission fires on every timeout
        and the unacked suffix can be the whole stream, so slicing would
        copy O(m) tuples per attempt.  Only primary-monitor sends feed
        the Karn ledger — subscriber acks are per-subscriber cumulative
        and must not taint the RTT samples.
        """
        frames = self._frames
        for i in range(acked, len(frames)):
            frame, kind, bits, _ = frames[i]
            if karn:
                self._retry.on_send(frame.seq, self.now)
            yield self.send(dest, frame, kind=kind, size_bits=bits)

    def _await_acks(self):
        """Retransmit unacked suffixes until everything is delivered.

        Returns ``"halted"`` when a halt arrived (already acknowledged,
        the caller just exits) and ``"done"`` otherwise — delivered, or
        the retry budget burned out (``gave_up``).
        """
        final_seq = len(self._frames)
        attempt = 0
        while (
            not self.gave_up
            and not self.subscriber_gave_up
            and not self._delivered()
        ):
            msg = yield self.receive_timeout(
                CAND_ACK_KIND,
                HALT_KIND,
                FEED_JOIN_KIND,
                timeout=self._retry.timeout(attempt),
                description=f"{self.name} awaiting ack > {self._acked}",
            )
            if msg is None:
                attempt += 1
                if attempt > self._retry.max_attempts:
                    if self._acked < final_seq:
                        self.gave_up = True
                    else:
                        # Only a subscriber is unreachable; the primary
                        # stream was delivered, so the run's verdict is
                        # unaffected — record it separately.
                        self.subscriber_gave_up = True
                    break
                if self._acked < final_seq:
                    yield from self._send_suffix(
                        self._monitor, self._acked, karn=True
                    )
                for sub in sorted(self._subscribers):
                    if self._subscribers[sub] < final_seq:
                        yield from self._send_suffix(
                            sub, self._subscribers[sub]
                        )
                continue
            if msg.corrupted:
                continue
            if msg.kind == HALT_KIND:
                yield from self._acknowledge_halt(msg.src)
                return "halted"
            if msg.kind == FEED_JOIN_KIND:
                self._admit_subscriber(msg.payload)
                yield from self._send_suffix(
                    msg.payload.subscriber,
                    self._subscribers[msg.payload.subscriber],
                )
                attempt = 0
                continue
            if msg.src in self._subscribers:
                if msg.payload > self._subscribers[msg.src]:
                    self._subscribers[msg.src] = msg.payload
                    attempt = 0
                continue
            if msg.payload > self._acked:
                # The cumulative ack covers every seq up to it; sample
                # round-trips for the newly covered, never-re-sent seqs.
                for seq in range(self._acked + 1, msg.payload + 1):
                    self._retry.on_ack(seq, self.now)
                self._acked = msg.payload
                attempt = 0
        return "done"

    def _acknowledge_halt(self, halter: str):
        """Ack the halt, then linger briefly to re-ack retransmissions.

        The linger window exceeds the halter's maximum retransmission
        gap, so a lost ``halt_ack`` is always repaired before this actor
        exits (a finished actor could no longer answer).
        """
        self.halted = True
        yield self.send(halter, None, kind=HALT_ACK_KIND,
                        size_bits=HALT_ACK_BITS)
        yield from self._relinger()

    def _relinger(self):
        """Re-ack halt retransmissions until the channel goes quiet."""
        linger = self._retry.linger_window()
        while True:
            msg = yield self.receive_timeout(
                HALT_KIND,
                timeout=linger,
                description=f"{self.name} lingering after halt",
            )
            if msg is None:
                return
            if msg.corrupted:
                continue
            yield self.send(msg.src, None, kind=HALT_ACK_KIND,
                            size_bits=HALT_ACK_BITS)


class TokenInjector(Actor):
    """Bootstraps a *plain* (fault-free) protocol with its first token.

    Fires one unadorned ``token`` message at t=0 and exits; every plain
    token detector shares this actor.  The hardened compositions use
    :class:`ReliableInjector` instead, which retransmits until acked.
    """

    def __init__(self, dest: str, payload: object, size_bits: int) -> None:
        super().__init__("token-injector")
        self._dest = dest
        self._payload = payload
        self._size_bits = size_bits

    def run(self):
        yield self.send(
            self._dest, self._payload, kind=TOKEN_KIND,
            size_bits=self._size_bits,
        )


class ReliableInjector(Actor):
    """Bootstraps a protocol by reliably delivering its first token frame.

    Retransmits until the destination's per-hop ack arrives; a
    destination that is down at injection time simply receives the frame
    after its restart (the paper's protocols start from the first
    monitor, so this is the crash-tolerant analogue of the plain
    :class:`TokenInjector`).
    """

    def __init__(
        self,
        dest: str,
        frame: TokenFrame,
        size_bits: int,
        retry: RetryPolicy | AdaptiveRetryPolicy | None = None,
        name: str = "token-injector",
    ) -> None:
        super().__init__(name)
        self._dest = dest
        self._frame = frame
        self._size_bits = size_bits
        self._retry = retry_schedule(retry, name)
        self._acked = False
        self.gave_up = False

    def run(self):
        attempt = 0
        while not self._acked:
            self._retry.on_send(self._frame.key, self.now)
            yield self.send(
                self._dest, self._frame, kind=TOKEN_KIND,
                size_bits=self._size_bits,
            )
            msg = yield self.receive_timeout(
                TOKEN_ACK_KIND,
                timeout=self._retry.timeout(attempt),
                description=f"{self.name} awaiting injection ack",
            )
            if msg is not None and not msg.corrupted:
                self._retry.on_ack(self._frame.key, self.now)
                self._acked = True
                return
            attempt += 1
            if attempt > self._retry.max_attempts:
                self.gave_up = True
                return


class ReliableEndpoint:
    """Mixin giving a monitor actor the hardened transport behaviours.

    Subclasses must be :class:`~repro.simulation.actors.Actor` types and
    call :meth:`_init_reliability` from ``__init__``; they implement
    ``_dispatch(msg)`` (a generator returning ``"handled"`` or
    ``"halt"``) on top of :meth:`_dispatch_common`.

    All transport state lives in persisted attributes:

    ``_inbox``
        the :class:`CandidateInbox` for this monitor's app stream;
    ``_seen_hops``
        highest ``(epoch, hop)`` accepted, per token ``gid``;
    ``_held``
        accepted-but-unprocessed token frames (almost always 0 or 1);
    ``_pending_out``
        un-acked outgoing frames, keyed by ``(gid, epoch, hop)``;
    ``_last_frames``
        the most recently accepted frame per ``gid`` — together with
        ``_pending_out`` this is the persisted state a takeover election
        regenerates a lost token from;
    ``_epoch``
        the highest takeover epoch this endpoint has adopted.
    """

    def _init_reliability(
        self, retry: RetryPolicy | AdaptiveRetryPolicy | None = None
    ) -> None:
        self._retry = retry_schedule(retry, self.name)
        self._inbox = CandidateInbox()
        self._seen_hops: dict[object, tuple[int, int]] = {}
        self._held: deque[TokenFrame] = deque()
        self._pending_out: dict[
            tuple[int, ...], tuple[str, str, TokenFrame, int]
        ] = {}
        self._last_frames: dict[object, TokenFrame] = {}
        self._app_src: str | None = None
        self._epoch = 0
        self._token_activity = 0.0
        self._halting_targets: set[str] | None = None
        self.halted = False
        self.gave_up = False
        self.halt_incomplete = False

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    @staticmethod
    def _dedup_gid(frame: TokenFrame):
        """Per-stream dedup/regeneration key.

        Historically just ``gid``; service-multiplexed frames get a
        ``(pred_id, gid)`` composite so each registered predicate's hop
        sequence is ordered independently of every other predicate's.
        """
        return (frame.pred_id, frame.gid) if frame.pred_id else frame.gid

    def _snapshot_frame(self, frame: TokenFrame) -> TokenFrame:
        """Deep-enough copy of an accepted frame.

        The sender keeps the original for retransmission; the receiver
        mutates its own copy so retransmitted bytes stay pristine.
        """
        return frame

    def _on_token_accepted(self, frame: TokenFrame) -> None:
        """Called once per *new* accepted frame, before processing."""

    def _stamp_frame(
        self, frame: TokenFrame, bits: int
    ) -> tuple[TokenFrame, int]:
        """Hook: decorate an outgoing token frame at transmission time.

        The membership layer overrides this to piggyback gossip on
        token traffic.  Must preserve ``frame.key`` (acks and dedup
        match on it) and return the possibly-adjusted accounting size.
        """
        return frame, bits

    def _ingest_frame(self, frame: TokenFrame) -> None:
        """Hook: observe an arriving token frame before dedup.

        Called for every arrival including duplicates, so overrides
        must be idempotent.  Plain method — no yields."""

    def _fd_receive(self, description: str):
        """Receive one message; the failure-detector mixin overrides this
        to heartbeat while idle (may return ``None`` after an idle tick).
        """
        msg = yield self.receive(description=description)
        return msg

    # ------------------------------------------------------------------
    # Common dispatch
    # ------------------------------------------------------------------
    def _dispatch_common(self, msg):
        """Handle transport-level kinds; returns a handling code.

        ``"handled"`` — consumed here; ``"halt"`` — a halt was received
        and acked, the caller must terminate; ``"unhandled"`` — a
        protocol-specific kind for the caller's ``_dispatch``.
        """
        if msg.kind in (CANDIDATE_KIND, END_OF_TRACE_KIND):
            yield from self._handle_app(msg)
            return "handled"
        if msg.kind == TOKEN_KIND:
            yield from self._handle_token_arrival(msg)
            return "handled"
        if msg.kind == TOKEN_ACK_KIND:
            if not msg.corrupted:
                if msg.payload in self._pending_out:
                    self._retry.on_ack(msg.payload, self.now)
                    self._token_activity = self.now
                self._pending_out.pop(msg.payload, None)
            return "handled"
        if msg.kind == HALT_KIND:
            if msg.corrupted:
                return "handled"  # the halter will retransmit
            self.halted = True
            yield self.send(msg.src, None, kind=HALT_ACK_KIND,
                            size_bits=HALT_ACK_BITS)
            return "halt"
        if msg.kind == HALT_ACK_KIND:
            return "handled"  # stale ack from an earlier halt wave
        return "unhandled"

    def _handle_app(self, msg):
        """Ingest a sequenced app message; ack duplicates and completion."""
        if msg.corrupted:
            return  # undetectable garbage: the feeder will retransmit
        self._app_src = msg.src  # remembered for elastic-join state sync
        item: Sequenced = msg.payload
        fresh = self._inbox.accept(item, msg.size_bits)
        if fresh and not item.final:
            self.metrics.adjust_space(msg.size_bits)
        if not fresh or self._inbox.complete:
            yield self.send(msg.src, self._inbox.ack, kind=CAND_ACK_KIND,
                            size_bits=ACK_BITS)

    def _handle_token_arrival(self, msg):
        """Dedup and immediately ack a token frame; hold new ones.

        Frames are ordered per gid by ``(epoch, hop)``: anything at or
        below the high-water mark is a duplicate, and a frame from an
        epoch older than this endpoint's is a stale token from a deposed
        epoch — both are acked (so the sender stops retransmitting) and
        discarded.
        """
        if msg.corrupted:
            return  # the previous holder will retransmit
        frame: TokenFrame = msg.payload
        self._ingest_frame(frame)
        gid = self._dedup_gid(frame)
        if frame.order <= self._seen_hops.get(gid, (0, 0)):
            # Duplicate (or retransmission of an already-accepted hop):
            # re-ack so the sender stops, then discard.
            yield self.send(msg.src, frame.key, kind=TOKEN_ACK_KIND,
                            size_bits=token_ack_bits(frame))
            return
        if frame.epoch < self._epoch:
            # Stale token from before a takeover: ack-and-discard, the
            # regenerated token supersedes it.
            yield self.send(msg.src, frame.key, kind=TOKEN_ACK_KIND,
                            size_bits=token_ack_bits(frame))
            return
        self._seen_hops[gid] = frame.order
        self._last_frames[gid] = frame
        self._token_activity = self.now
        if frame.epoch > self._epoch:
            self._adopt_epoch(frame.epoch)
        self._held.append(self._snapshot_frame(frame))
        self._on_token_accepted(frame)
        yield self.send(msg.src, frame.key, kind=TOKEN_ACK_KIND,
                        size_bits=token_ack_bits(frame))

    # ------------------------------------------------------------------
    # Candidate consumption
    # ------------------------------------------------------------------
    def _next_candidate(self):
        """Yield until the next in-order candidate (or end of trace).

        Returns ``(payload, size_bits)``, or ``None`` once the stream is
        exhausted, or the string ``"halt"`` if the protocol was halted
        while waiting.
        """
        while True:
            entry = self._inbox.pop()
            if entry is not None:
                self.metrics.adjust_space(-entry[1])
                return entry
            if self._inbox.exhausted:
                return None
            msg = yield from self._fd_receive(
                f"{self.name} awaiting candidate"
            )
            if msg is None:
                if self.halted:
                    return "halt"  # halt arrived during a detector tick
                continue  # idle heartbeat tick
            code = yield from self._dispatch(msg)
            if code == "halt":
                return "halt"

    # ------------------------------------------------------------------
    # Takeover-epoch state
    # ------------------------------------------------------------------
    def _adopt_epoch(self, epoch: int) -> None:
        """Enter a later takeover epoch; abandon stale outgoing tokens.

        Pending *token* transfers from a deposed epoch would only be
        ack-and-discarded by their receivers, so retransmitting them is
        pure noise — drop them (their state is still captured in
        ``_last_frames`` / the election's collected frames).
        """
        if epoch <= self._epoch:
            return
        self._epoch = epoch
        for key in [
            k for k, (_, kind, frame, _) in self._pending_out.items()
            if kind == TOKEN_KIND and frame.epoch < epoch
        ]:
            del self._pending_out[key]
            self._retry.forget(key)

    def _best_frame(self, gid: int) -> TokenFrame | None:
        """The most advanced persisted frame for ``gid``.

        Considers both the last accepted frame and any un-acked outgoing
        frame (the latter is one hop ahead when a transfer was cut short
        by a crash); this is the state a takeover election offers as the
        regeneration basis.
        """
        best = self._last_frames.get(gid)
        for _dest, kind, frame, _bits in self._pending_out.values():
            if kind != TOKEN_KIND or frame.gid != gid:
                continue
            if best is None or frame.order > best.order:
                best = frame
        return best

    def _drop_stale_held(self) -> bool:
        """Discard held frames from deposed epochs; True if any dropped."""
        dropped = False
        while self._held and self._held[0].epoch < self._epoch:
            self._held.popleft()
            dropped = True
        return dropped

    # ------------------------------------------------------------------
    # Outgoing transfers
    # ------------------------------------------------------------------
    def _begin_transfer(
        self, dest: str, frame: TokenFrame, size_bits: int, kind: str = TOKEN_KIND
    ) -> None:
        """Queue ``frame`` for reliable delivery to ``dest``."""
        self._pending_out[frame.key] = (dest, kind, frame, size_bits)
        if kind == TOKEN_KIND:
            self._last_frames[self._dedup_gid(frame)] = frame

    def _drive_transfers(self):
        """Retransmit pending frames until all acked.

        Returns ``"ok"``, ``"halt"`` or ``"gave_up"``.  The first send
        of each frame happens here too, so a crash-restart naturally
        retransmits from persisted state.
        """
        attempt = 0
        while self._pending_out:
            for key in sorted(self._pending_out):
                dest, kind, frame, bits = self._pending_out[key]
                if kind == TOKEN_KIND:
                    frame, bits = self._stamp_frame(frame, bits)
                self._retry.on_send(key, self.now)
                yield self.send(dest, frame, kind=kind, size_bits=bits)
            timeout = self._retry.timeout(attempt)
            while self._pending_out:
                msg = yield self.receive_timeout(
                    timeout=timeout,
                    description=f"{self.name} awaiting token ack",
                )
                if msg is None:
                    break
                code = yield from self._dispatch(msg)
                if code == "halt":
                    return "halt"
            else:
                return "ok"
            attempt += 1
            if attempt > self._retry.max_attempts:
                self.gave_up = True
                self._pending_out.clear()
                return "gave_up"
        return "ok"

    # ------------------------------------------------------------------
    # Reliable termination
    # ------------------------------------------------------------------
    def _reliable_halt(self, targets):
        """Broadcast halt and retransmit until every target acks.

        A concurrently-halting peer's own ``halt`` counts as its ack
        (both sides are terminating; neither needs the other alive).
        Bounded by the retry budget: unreachable targets are abandoned
        with ``halt_incomplete`` — *not* ``gave_up``, because the
        verdict was committed before halting began and an unfinished
        shutdown handshake cannot invalidate it.
        """
        if self._halting_targets is None:
            self._halting_targets = {t for t in targets if t != self.name}
        pending = self._halting_targets
        attempt = 0
        while pending:
            yield [
                self.send(t, None, kind=HALT_KIND, size_bits=1)
                for t in sorted(pending)
            ]
            timeout = self._retry.timeout(attempt)
            while pending:
                msg = yield self.receive_timeout(
                    timeout=timeout,
                    description=f"{self.name} halting {len(pending)} peers",
                )
                if msg is None:
                    break
                if msg.corrupted:
                    continue
                if msg.kind == HALT_ACK_KIND:
                    pending.discard(msg.src)
                    continue
                if msg.kind == HALT_KIND:
                    yield self.send(msg.src, None, kind=HALT_ACK_KIND,
                                    size_bits=HALT_ACK_BITS)
                    pending.discard(msg.src)
                    continue
                # Anything else is a stale retransmission needing a re-ack.
                yield from self._dispatch(msg)
            attempt += 1
            if attempt > self._retry.max_attempts:
                self.halt_incomplete = True
                return

    def _linger(self):
        """Answer straggler retransmissions briefly, then exit.

        Run after this endpoint's part in the protocol is over (halted,
        or done halting others): peers whose acks were lost are still
        retransmitting, and would otherwise retry into a finished actor
        until they exhausted their budgets.  The window exceeds any
        peer's maximum retransmission gap.
        """
        linger = self._retry.linger_window()
        while True:
            msg = yield self.receive_timeout(
                timeout=linger,
                description=f"{self.name} lingering after halt",
            )
            if msg is None:
                return
            yield from self._dispatch(msg)
