"""Stack layer 2 — membership: heartbeat failure detection + takeover.

The paper assumes ever-live monitors (§2); PR 1's reliability layer
relaxed that to crash/*restart*, converting permanent monitor death into
a ``degraded`` outcome once the retry budget burned out.  This module
closes the remaining gap with the standard construction (an eventually-
perfect failure detector plus coordinated takeover):

* **Failure detection** — every hardened monitor heartbeats its peers
  from its idle loop (a ``receive_timeout`` tick, so heartbeats ride the
  same mailbox as protocol traffic and cost nothing while the protocol
  is busy).  A peer silent for longer than ``suspicion_after`` is
  *suspected*; suspicion is eventually perfect in the model because a
  live, un-partitioned peer always ticks within one interval.
* **Takeover election** — when the token has been silent past ``grace``
  and this monitor is the lowest-slot unsuspected survivor, it bumps the
  takeover epoch and broadcasts ``elect``.  Respondents adopt the epoch
  (which ack-and-discards every stale token of earlier epochs, see
  :meth:`~repro.detect.stack.transport.ReliableEndpoint._handle_token_arrival`)
  and reply with their best persisted frames.  The deterministic winner
  — the lowest responding slot — regenerates each token from the
  lexicographically greatest ``(epoch, hop)`` frame collected, restamped
  with the new epoch.
* **Safety under false suspicion** — a live holder that receives the
  ``elect`` responds with its own (most advanced) frame, so the
  regenerated token continues from the live state; its now-stale frames
  are discarded on receipt everywhere.  Monitors replay their persisted
  ``_accepted`` candidate when a regenerated token re-presents an
  already-satisfied bound, so re-visits consume no fresh candidates and
  the detected cut is unchanged — elimination bounds are monotone, and
  every bound a stale token established was valid.

Heartbeat ticking is bounded by ``max_idle_rounds`` consecutive idle
ticks so runs whose predicate never becomes true still quiesce to the
kernel's deadlock detection (mapped to "not detected" / ``degraded``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_seed
from repro.common.types import WORD_BITS
from repro.detect.base import HALT_KIND, TOKEN_KIND
from repro.detect.stack.gossip import (
    ALIVE,
    GOSSIP_KINDS,
    JOIN_ACK_KIND,
    JOIN_KIND,
    PIGGYBACK_LIMIT,
    PING_ACK_KIND,
    PING_KIND,
    PING_REQ_KIND,
    STATE_SYNC_KIND,
    GossipUpdate,
    Join,
    JoinWelcome,
    Ping,
    PingAck,
    PingReq,
    StateSync,
    SwimState,
)
from repro.detect.stack.transport import (
    FEED_JOIN_KIND,
    HALT_ACK_BITS,
    HALT_ACK_KIND,
    FeedJoin,
    TokenFrame,
)

__all__ = [
    "HEARTBEAT_KIND",
    "ELECT_KIND",
    "ELECT_OK_KIND",
    "REGEN_KIND",
    "HEARTBEAT_BITS",
    "ELECT_BITS",
    "FailureDetectorConfig",
    "Heartbeat",
    "Elect",
    "ElectOk",
    "RegenRequest",
    "FailureDetectorMixin",
    "best_frames",
]

# Message kinds introduced by the failure-detection layer.
HEARTBEAT_KIND = "heartbeat"     # liveness beacon, monitor -> monitor
ELECT_KIND = "elect"             # takeover proposal (new epoch)
ELECT_OK_KIND = "elect_ok"       # proposal ack + best persisted frames
REGEN_KIND = "regen_request"     # appoint the winner to regenerate

HEARTBEAT_BITS = 2 * WORD_BITS + 1   # (slot, epoch, holding)
ELECT_BITS = 2 * WORD_BITS       # (epoch, slot)

#: Kinds whose arrival does not reset the idle-round counter (pure
#: liveness traffic must not keep a dead run from quiescing).
_HEARTBEAT_ONLY = frozenset({HEARTBEAT_KIND})


@dataclass(frozen=True, slots=True)
class FailureDetectorConfig:
    """Knobs for the heartbeat detector and takeover election.

    ``heartbeat_interval``
        idle-tick period; each tick heartbeats every peer.
    ``suspicion_after``
        heartbeat silence before a peer is suspected (must exceed the
        interval by enough slack to ride out transient loss).
    ``grace``
        token silence before a takeover election may start; the paper's
        token is never idle this long in a healthy run, so the grace
        period is what keeps false takeovers rare (they are safe, just
        wasteful).
    ``election_window``
        how long the initiator collects ``elect_ok`` replies before
        appointing the winner.
    ``max_idle_rounds``
        consecutive idle ticks before a monitor stops ticking and falls
        back to a blocking receive — the quiescence bound that lets
        never-true-predicate runs end in kernel deadlock as before.
    ``membership``
        which layer-2 implementation runs: ``"heartbeat"`` (all-to-all
        beacons, O(N²) liveness traffic) or ``"gossip"`` (SWIM-style
        randomized probing with epidemic dissemination, O(N); see
        :mod:`repro.detect.stack.gossip`).
    ``gossip_fanout``
        gossip mode only: how many helpers an indirect probe asks, and
        how many peers election/halt announcements are pushed to per
        round.
    ``gossip_interval``
        gossip mode only: the probe-tick period (defaults to
        ``heartbeat_interval``).  In gossip mode ``suspicion_after`` is
        reused as the suspect→confirm refutation window.
    ``gossip_timeout``
        gossip mode only: how long a direct (and then indirect) probe
        waits before escalating/suspecting (defaults to the tick
        interval).  Shorter timeouts detect faster but false-suspect
        more under loss; both effects are refutation-safe.
    """

    heartbeat_interval: float = 4.0
    suspicion_after: float = 12.0
    grace: float = 30.0
    election_window: float = 10.0
    max_idle_rounds: int = 60
    membership: str = "heartbeat"
    gossip_fanout: int = 3
    gossip_interval: float | None = None
    gossip_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ConfigurationError(
                f"heartbeat_interval must be > 0, got {self.heartbeat_interval}"
            )
        if self.suspicion_after < self.heartbeat_interval:
            raise ConfigurationError(
                "suspicion_after must be >= heartbeat_interval"
            )
        if self.grace <= 0:
            raise ConfigurationError(f"grace must be > 0, got {self.grace}")
        if self.election_window <= 0:
            raise ConfigurationError(
                f"election_window must be > 0, got {self.election_window}"
            )
        if self.max_idle_rounds < 1:
            raise ConfigurationError("max_idle_rounds must be >= 1")
        if self.membership not in ("heartbeat", "gossip"):
            raise ConfigurationError(
                "membership must be 'heartbeat' or 'gossip', "
                f"got {self.membership!r}"
            )
        if self.gossip_fanout < 1:
            raise ConfigurationError(
                f"gossip_fanout must be >= 1, got {self.gossip_fanout}"
            )
        if self.gossip_interval is not None and self.gossip_interval <= 0:
            raise ConfigurationError(
                f"gossip_interval must be > 0, got {self.gossip_interval}"
            )
        if self.gossip_timeout is not None and self.gossip_timeout <= 0:
            raise ConfigurationError(
                f"gossip_timeout must be > 0, got {self.gossip_timeout}"
            )

    @property
    def tick_interval(self) -> float:
        """The idle-tick period for the selected membership style."""
        if self.membership == "gossip" and self.gossip_interval is not None:
            return self.gossip_interval
        return self.heartbeat_interval

    @property
    def probe_timeout(self) -> float:
        """The gossip probe deadline (per stage, direct or indirect)."""
        if self.membership == "gossip" and self.gossip_timeout is not None:
            return self.gossip_timeout
        return self.tick_interval


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """A liveness beacon: the sender's slot and current epoch.

    ``holding`` advertises that the sender currently holds (or is
    transferring) a token; receivers treat it as token activity, so no
    takeover election starts while a live holder is merely slow.
    """

    slot: int
    epoch: int
    holding: bool = False


@dataclass(frozen=True, slots=True)
class Elect:
    """A takeover proposal for ``epoch``, initiated by ``slot``."""

    epoch: int
    slot: int


@dataclass(frozen=True, slots=True)
class ElectOk:
    """A proposal ack: the responder's best persisted frames.

    ``red`` reports whether the responder's own slot is currently
    eligible to host the token (always True for the vector-clock
    algorithms; the direct-dependence token may only sit at a red
    process).
    """

    epoch: int
    slot: int
    frames: tuple[TokenFrame, ...]
    red: bool = True

    def size_bits(self) -> int:
        return 2 * WORD_BITS + sum(
            _frame_bits(frame) for frame in self.frames
        )


@dataclass(frozen=True, slots=True)
class RegenRequest:
    """Appointment of the election winner, with the collected state."""

    epoch: int
    frames: tuple[TokenFrame, ...]
    red_slots: tuple[int, ...] = ()

    def size_bits(self) -> int:
        return WORD_BITS * (1 + len(self.red_slots)) + sum(
            _frame_bits(frame) for frame in self.frames
        )


def _frame_bits(frame: TokenFrame) -> int:
    """Accounting size of one frame inside an election message."""
    body_bits = 0
    size_of = getattr(frame.body, "size_bits", None)
    if callable(size_of):
        body_bits = size_of()
    return 3 * WORD_BITS + body_bits


def best_frames(frames) -> tuple[TokenFrame, ...]:
    """The lexicographically greatest ``(epoch, hop)`` frame per gid."""
    best: dict[int, TokenFrame] = {}
    for frame in frames:
        incumbent = best.get(frame.gid)
        if incumbent is None or frame.order > incumbent.order:
            best[frame.gid] = frame
    return tuple(best[gid] for gid in sorted(best))


class FailureDetectorMixin:
    """Failure detection + takeover, layered over ``ReliableEndpoint``.

    Hosts call :meth:`_init_failure_detector` after
    ``_init_reliability``, replace their idle ``receive`` with
    :meth:`_fd_receive`, and route unhandled message kinds through
    :meth:`_dispatch_fd`.  Hosts provide:

    ``_fd_slot()``
        this monitor's election identity (lower wins);
    ``_fd_peers()``
        ``{slot: actor_name}`` for every peer that runs the detector;
    ``_fd_is_red()``
        whether this monitor may host a regenerated token
        (direct-dependence routing; vector-clock hosts return True);
    ``_fd_install(frame, red_slots)``
        generator taking possession of a regenerated frame (the default
        holds it locally as if freshly accepted).

    Hosts whose token state is *not* recoverable from peers set
    ``_fd_can_take_over = False``: the detector still heartbeats and
    answers elections, but never initiates one.  The direct-dependence
    algorithm is the motivating case — its token is an empty baton and
    all protocol state (including the red-chain pointers) lives in the
    holder, so a dead holder's persisted frame IS the token: recovery is
    resume-on-restart, and permanent death honestly degrades the run.
    """

    #: Whether this host may initiate takeover elections.
    _fd_can_take_over = True

    def _init_failure_detector(
        self, config: FailureDetectorConfig | None
    ) -> None:
        self._fd = config
        self._fd_last_heard: dict[int, float] = {}
        self._fd_idle_rounds = 0
        self._fd_regen_epoch = 0
        self._swim: SwimState | None = None
        #: Members learned at runtime (elastic join), ``{slot: name}`` —
        #: merged with the host's static ``_fd_peers`` everywhere the
        #: detector routes by slot.
        self._fd_extra_peers: dict[int, str] = {}
        self.elections = 0
        self.takeovers = 0

    # ------------------------------------------------------------------
    # Host hooks (overridable)
    # ------------------------------------------------------------------
    def _fd_is_red(self) -> bool:
        return True

    def _fd_names(self) -> dict[int, str]:
        """Names to pre-seed the SWIM state with (elastic members only;
        static members are routable without carrying a name)."""
        return {}

    def _fd_all_peers(self) -> dict[int, str]:
        """The host's static peers plus every runtime-joined member."""
        peers = self._fd_peers()
        if self._fd_extra_peers:
            peers = {**peers, **self._fd_extra_peers}
        return peers

    def _fd_finished(self) -> bool:
        """Whether the protocol has locally concluded.

        A finished monitor answers takeover proposals with a fresh
        ``halt`` instead of an election reply: a partition can eat every
        halt retransmission the declaring monitor had budget for, and
        without this the survivors would re-elect (and regenerate tokens
        for a decided run) forever.  Elections double as the recovery
        channel for lost halts.
        """
        return bool(
            self.halted
            or getattr(self, "detected", False)
            or getattr(self, "aborted", False)
        )

    def _fd_install(self, frame: TokenFrame, red_slots):
        """Take possession of a regenerated token frame (default: hold)."""
        self._seen_hops[frame.gid] = frame.order
        self._last_frames[frame.gid] = frame
        self._held.append(self._snapshot_frame(frame))
        self._on_token_accepted(frame)
        return
        yield  # pragma: no cover - generator marker

    # ------------------------------------------------------------------
    # Idle loop
    # ------------------------------------------------------------------
    def _fd_receive(self, description: str):
        """Receive one message, ticking the detector while idle.

        Returns the message, or ``None`` after an idle tick (the caller
        just loops).  Once ``max_idle_rounds`` consecutive idle ticks
        pass with no protocol traffic, falls back to a blocking receive
        so a dead run can quiesce.
        """
        if self._fd is None or self._fd_idle_rounds >= self._fd.max_idle_rounds:
            msg = yield self.receive(description=description)
            return msg
        passive = (
            GOSSIP_KINDS if self._fd.membership == "gossip"
            else _HEARTBEAT_ONLY
        )
        msg = yield self.receive_timeout(
            timeout=self._fd.tick_interval, description=description
        )
        if msg is not None:
            if msg.kind not in passive:
                self._fd_idle_rounds = 0
            return msg
        yield from self._fd_tick()
        return None

    def _fd_holding(self) -> bool:
        """Whether a token is demonstrably here (held or mid-transfer)."""
        return bool(self._held) or any(
            kind == TOKEN_KIND
            for (_d, kind, _f, _b) in self._pending_out.values()
        )

    def _fd_alive_slots(self, now: float) -> set[int]:
        """Slots this monitor considers live (including itself)."""
        assert self._fd is not None
        if self._fd.membership == "gossip":
            return self._swim_state().alive_slots()
        return {self._fd_slot()} | {
            slot
            for slot, heard in self._fd_last_heard.items()
            if now - heard <= self._fd.suspicion_after
        }

    def _fd_tick(self):
        """One idle tick: beacon or probe the peers, maybe elect."""
        assert self._fd is not None
        self._fd_idle_rounds += 1
        holding = self._fd_holding()
        if self._fd.membership == "gossip":
            yield from self._swim_tick(holding)
        else:
            peers = self._fd_all_peers()
            beat = Heartbeat(self._fd_slot(), self._epoch, holding)
            yield [
                self.send(name, beat, kind=HEARTBEAT_KIND,
                          size_bits=HEARTBEAT_BITS)
                for _slot, name in sorted(peers.items())
            ]
        now = self.now
        if not self._fd_can_take_over:
            return
        if now - self._token_activity < self._fd.grace:
            return
        if holding:
            return  # the token is demonstrably here; nothing to take over
        alive = self._fd_alive_slots(now)
        if self._fd_slot() != min(alive):
            return  # a lower unsuspected slot is responsible for takeover
        yield from self._fd_run_election()

    # ------------------------------------------------------------------
    # Gossip (SWIM) membership
    # ------------------------------------------------------------------
    def _swim_state(self) -> SwimState:
        """The persisted SWIM state machine (created on first use)."""
        assert self._fd is not None
        if self._swim is None:
            self._swim = SwimState(
                self._fd_slot(),
                self._fd_all_peers(),
                fanout=self._fd.gossip_fanout,
                seed=derive_seed(0, self.name),
                names={**self._fd_extra_peers, **self._fd_names()},
            )
        return self._swim

    def _swim_tick(self, holding: bool):
        """One gossip tick: advance the probe state machine by one step.

        Direct ping -> (on timeout) k-way indirect ping-req -> (on
        timeout) suspect; overdue suspects are confirmed after the
        refutation window.  Cost per tick is O(1) messages regardless
        of the monitor-group size.
        """
        assert self._fd is not None
        swim = self._swim_state()
        now = self.now
        timeout = self._fd.probe_timeout
        peers = self._fd_all_peers()
        if swim.probe_target is not None and swim.probe_due(now):
            if swim.probe_stage == "direct":
                helpers = swim.escalate(now, timeout, self._fd.gossip_fanout)
                if helpers:
                    req = PingReq(
                        swim.probe_seq, swim.slot, swim.incarnation,
                        swim.probe_target, swim.piggyback(PIGGYBACK_LIMIT),
                    )
                    yield [
                        self.send(peers[h], req, kind=PING_REQ_KIND,
                                  size_bits=req.size_bits())
                        for h in helpers
                    ]
                else:
                    swim.fail_probe(now)
            else:
                swim.fail_probe(now)
        if swim.probe_target is None:
            target = swim.next_target()
            if target is not None and target in peers:
                seq = swim.begin_probe(target, now, timeout)
                ping = Ping(
                    seq, swim.slot, swim.incarnation, swim.slot,
                    holding, swim.piggyback(PIGGYBACK_LIMIT),
                )
                yield self.send(peers[target], ping, kind=PING_KIND,
                                size_bits=ping.size_bits())
        swim.promote_due(now, self._fd.suspicion_after)

    def _swim_note_peer(self, slot: int, incarnation: int,
                        holding: bool) -> None:
        """First-hand contact with ``slot``: implicit alive + activity."""
        swim = self._swim_state()
        swim.apply(GossipUpdate(slot, ALIVE, incarnation), self.now)
        self._fd_last_heard[slot] = self.now
        if holding:
            self._token_activity = self.now

    def _swim_ingest(self, updates):
        """Fold piggybacked gossip in; react to fresh announcements.

        A fresh *elect* announcement is answered exactly like a direct
        ``elect`` message (halt re-delivery for finished runs, epoch
        adoption + ``elect_ok`` otherwise); a fresh *halt* announcement
        terminates this monitor and acks the halt's originator.
        Returns ``"halt"`` when the caller must terminate.
        """
        swim = self._swim_state()
        code = "handled"
        for event in swim.ingest(updates, self.now):
            tag = event[0]
            if tag == "joined":
                _, slot, name = event
                self._fd_extra_peers[slot] = name
                self._fd_last_heard.setdefault(slot, self.now)
                continue
            peers = self._fd_all_peers()
            if tag == "elect":
                _, epoch, slot = event
                origin = peers.get(slot)
                if origin is None or slot == swim.slot:
                    continue
                if self._fd_finished():
                    yield self.send(origin, None, kind=HALT_KIND,
                                    size_bits=1)
                elif epoch > self._epoch:
                    self._adopt_epoch(epoch)
                    self._drop_stale_held()
                    reply = self._fd_state(epoch)
                    yield self.send(origin, reply, kind=ELECT_OK_KIND,
                                    size_bits=reply.size_bits())
            elif tag == "halt":
                _, _epoch, slot = event
                origin = peers.get(slot)
                self.halted = True
                if origin is not None:
                    yield self.send(origin, None, kind=HALT_ACK_KIND,
                                    size_bits=HALT_ACK_BITS)
                code = "halt"
        return code

    # ------------------------------------------------------------------
    # Election
    # ------------------------------------------------------------------
    def _fd_state(self, epoch: int) -> ElectOk:
        """This monitor's contribution to an election for ``epoch``."""
        gids = set(self._last_frames)
        gids.update(
            frame.gid
            for (_d, kind, frame, _b) in self._pending_out.values()
            if kind == TOKEN_KIND
        )
        frames = []
        for gid in sorted(gids):
            frame = self._best_frame(gid)
            if frame is not None:
                frames.append(frame)
        return ElectOk(
            epoch=epoch,
            slot=self._fd_slot(),
            frames=tuple(frames),
            red=self._fd_is_red(),
        )

    def _fd_run_election(self):
        """Run one takeover election as its initiator."""
        assert self._fd is not None
        epoch = self._epoch + 1
        self._adopt_epoch(epoch)
        self._drop_stale_held()
        self.elections += 1
        my_slot = self._fd_slot()
        peers = self._fd_all_peers()
        if self._fd.membership == "gossip":
            # No broadcast: announce the election through the gossip
            # channel and push it to ``fanout`` peers immediately; the
            # epidemic spread recruits the rest, each respondent
            # replying elect_ok straight to this initiator.
            swim = self._swim_state()
            swim.announce("elect", epoch, my_slot)
            targets = sorted(
                (s for s in swim.alive_slots()
                 if s != my_slot and s in peers),
                key=lambda s: derive_seed(swim.seed, f"elect:{epoch}:{s}"),
            )[: self._fd.gossip_fanout]
            sends = []
            for slot in targets:
                seq = swim.new_seq()
                ping = Ping(
                    seq, my_slot, swim.incarnation, my_slot,
                    False, swim.piggyback(PIGGYBACK_LIMIT),
                )
                sends.append(self.send(
                    peers[slot], ping, kind=PING_KIND,
                    size_bits=ping.size_bits(),
                ))
            if sends:
                yield sends
        else:
            proposal = Elect(epoch, my_slot)
            yield [
                self.send(name, proposal, kind=ELECT_KIND,
                          size_bits=ELECT_BITS)
                for _slot, name in sorted(peers.items())
            ]
        deadline = self.now + self._fd.election_window
        replies: dict[int, ElectOk] = {my_slot: self._fd_state(epoch)}
        while self.now < deadline:
            msg = yield self.receive_timeout(
                timeout=deadline - self.now,
                description=f"{self.name} collecting election replies",
            )
            if msg is None:
                break
            if msg.corrupted:
                continue
            if msg.kind == ELECT_OK_KIND and msg.payload.epoch == epoch:
                reply: ElectOk = msg.payload
                replies[reply.slot] = reply
                self._fd_last_heard[reply.slot] = self.now
                continue
            code = yield from self._dispatch(msg)
            if code == "halt" or self._epoch > epoch:
                return  # halted, or a higher-epoch election superseded us
        if self._epoch > epoch:
            return
        # Election over; the token counts as "active" again so the next
        # grace period starts fresh (a natural re-election cooldown).
        self._token_activity = self.now
        frames = best_frames(
            frame for reply in replies.values() for frame in reply.frames
        )
        if not frames:
            return  # nothing survives to regenerate from
        red_slots = tuple(sorted(
            slot for slot, reply in replies.items() if reply.red
        ))
        if not red_slots:
            # No surviving monitor may host the token (direct-dependence
            # routing: the only red holder died for good) — the run will
            # degrade honestly instead of detecting from a bad cut.
            return
        winner = red_slots[0]
        if winner == my_slot:
            yield from self._fd_regenerate(epoch, frames, red_slots)
        else:
            request = RegenRequest(epoch, frames, red_slots)
            yield self.send(
                peers[winner], request, kind=REGEN_KIND,
                size_bits=request.size_bits(),
            )

    def _fd_regenerate(self, epoch: int, frames, red_slots):
        """Regenerate every collected token, restamped with ``epoch``."""
        if epoch <= self._fd_regen_epoch:
            return  # this epoch's takeover already happened here
        self._fd_regen_epoch = epoch
        self.takeovers += 1
        self._token_activity = self.now
        self._fd_idle_rounds = 0
        for frame in frames:
            reborn = TokenFrame(
                hop=frame.hop, body=frame.body, gid=frame.gid, epoch=epoch
            )
            yield from self._fd_install(reborn, red_slots)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch_fd(self, msg):
        """Handle failure-detection kinds; mirrors ``_dispatch_common``."""
        if self._fd is None:
            return "unhandled"
        if msg.kind == HEARTBEAT_KIND:
            if not msg.corrupted:
                beat: Heartbeat = msg.payload
                self._fd_last_heard[beat.slot] = self.now
                if beat.holding:
                    self._token_activity = self.now
                if beat.epoch > self._epoch:
                    self._adopt_epoch(beat.epoch)
                    self._drop_stale_held()
            return "handled"
        if msg.kind == ELECT_KIND:
            if msg.corrupted:
                return "handled"  # the initiator retries via re-election
            proposal: Elect = msg.payload
            self._fd_last_heard[proposal.slot] = self.now
            if self._fd_finished():
                # The run is already decided here; the initiator missed
                # the halt (a partition ate it).  Re-deliver it instead
                # of letting a dead protocol be resurrected.
                yield self.send(msg.src, None, kind=HALT_KIND, size_bits=1)
                return "handled"
            if proposal.epoch > self._epoch:
                self._adopt_epoch(proposal.epoch)
                self._drop_stale_held()
                reply = self._fd_state(proposal.epoch)
                yield self.send(
                    msg.src, reply, kind=ELECT_OK_KIND,
                    size_bits=reply.size_bits(),
                )
            return "handled"
        if msg.kind == ELECT_OK_KIND:
            return "handled"  # a straggler from a closed election window
        if msg.kind == REGEN_KIND:
            if msg.corrupted:
                return "handled"
            request: RegenRequest = msg.payload
            if self._fd_finished():
                yield self.send(msg.src, None, kind=HALT_KIND, size_bits=1)
                return "handled"
            if request.epoch >= self._epoch:
                self._adopt_epoch(request.epoch)
                self._drop_stale_held()
                yield from self._fd_regenerate(
                    request.epoch, request.frames, request.red_slots
                )
            return "handled"
        if msg.kind == PING_KIND:
            if msg.corrupted:
                return "handled"  # the prober times out and escalates
            ping: Ping = msg.payload
            code = yield from self._swim_ingest(ping.updates)
            if code == "halt":
                return code
            self._swim_note_peer(ping.slot, ping.incarnation, ping.holding)
            swim = self._swim_state()
            dest = self._fd_all_peers().get(ping.reply_to)
            if dest is None and ping.reply_to == ping.slot:
                # A direct probe from a joiner this monitor has not been
                # introduced to yet: the sender is still routable.
                dest = msg.src
            if dest is not None:
                ack = PingAck(
                    ping.seq, swim.slot, swim.incarnation,
                    self._fd_holding(), swim.piggyback(PIGGYBACK_LIMIT),
                )
                yield self.send(dest, ack, kind=PING_ACK_KIND,
                                size_bits=ack.size_bits())
            return "handled"
        if msg.kind == PING_ACK_KIND:
            if msg.corrupted:
                return "handled"
            ack_in: PingAck = msg.payload
            code = yield from self._swim_ingest(ack_in.updates)
            if code == "halt":
                return code
            self._swim_note_peer(ack_in.slot, ack_in.incarnation,
                                 ack_in.holding)
            self._swim_state().on_ack(ack_in.slot, ack_in.seq)
            return "handled"
        if msg.kind == PING_REQ_KIND:
            if msg.corrupted:
                return "handled"
            req: PingReq = msg.payload
            code = yield from self._swim_ingest(req.updates)
            if code == "halt":
                return code
            self._swim_note_peer(req.slot, req.incarnation, False)
            swim = self._swim_state()
            dest = self._fd_all_peers().get(req.target)
            if dest is not None:
                # Stateless relay: the target acks straight back to the
                # requester (``reply_to``), so no helper bookkeeping.
                relay = Ping(
                    req.seq, swim.slot, swim.incarnation, req.slot,
                    False, swim.piggyback(PIGGYBACK_LIMIT),
                )
                yield self.send(dest, relay, kind=PING_KIND,
                                size_bits=relay.size_bits())
            return "handled"
        if msg.kind == JOIN_KIND:
            if msg.corrupted:
                return "handled"  # the joiner retransmits
            if self._fd.membership != "gossip":
                return "handled"  # elastic join is gossip-only
            join: Join = msg.payload
            swim = self._swim_state()
            fresh = swim.add_member(
                join.slot, join.name, incarnation=join.incarnation
            )
            self._fd_extra_peers[join.slot] = join.name
            self._fd_last_heard[join.slot] = self.now
            # Welcome: the full membership snapshot plus the current
            # election epoch, so the joiner is correct from message one.
            # Re-sent on every retransmitted join (the previous welcome
            # may have been lost); membership admission is idempotent.
            peers = self._fd_all_peers()
            me = swim.table[swim.slot]
            members = [(swim.slot, self.name, me.incarnation, me.status)]
            for slot in sorted(peers):
                entry = swim.table.get(slot)
                if entry is None or slot == swim.slot:
                    continue
                members.append(
                    (slot, peers[slot], entry.incarnation, entry.status)
                )
            welcome = JoinWelcome(tuple(members), self._epoch)
            yield self.send(msg.src, welcome, kind=JOIN_ACK_KIND,
                            size_bits=welcome.size_bits())
            # Anti-entropy: this monitor's persisted token frames and its
            # candidate-ack baseline, so the joiner's inbox starts at the
            # right sequence number instead of demanding retired history.
            frames = tuple(
                f for f in (
                    self._best_frame(gid) for gid in sorted(self._last_frames)
                )
                if f is not None
            )
            stream = self._app_src
            baselines = ((stream, self._inbox.ack),) if stream else ()
            sync = StateSync(
                frames=frames, baselines=baselines,
                frame_bits=sum(_frame_bits(f) for f in frames),
            )
            yield self.send(msg.src, sync, kind=STATE_SYNC_KIND,
                            size_bits=sync.size_bits())
            if stream:
                # Subscribe the joiner to this monitor's feeder stream
                # from the baseline on (idempotent at the feeder).
                feed = FeedJoin(join.name, self._inbox.ack)
                yield self.send(stream, feed, kind=FEED_JOIN_KIND,
                                size_bits=feed.size_bits())
            return "handled"
        return "unhandled"

    # ------------------------------------------------------------------
    # Gossip piggybacking on token traffic (transport hooks)
    # ------------------------------------------------------------------
    def _stamp_frame(self, frame: TokenFrame, bits: int):
        """Piggyback pending membership updates on an outgoing token.

        Announcements never ride frames — frame ingestion happens in a
        non-yielding hook, so it could not send the replies an election
        or halt announcement demands.
        """
        if self._fd is None or self._fd.membership != "gossip":
            return frame, bits
        updates = self._swim_state().piggyback(
            PIGGYBACK_LIMIT, membership_only=True
        )
        if not updates:
            return frame, bits
        stamped = TokenFrame(
            hop=frame.hop, body=frame.body, gid=frame.gid,
            epoch=frame.epoch, gossip=updates,
        )
        return stamped, bits + sum(u.size_bits() for u in updates)

    def _ingest_frame(self, frame: TokenFrame) -> None:
        """Fold membership gossip off an arriving token frame.

        Runs before dedup, so even a duplicate frame's piggyback is
        used; ingestion is idempotent (precedence is a total order).
        """
        if self._fd is None or self._fd.membership != "gossip":
            return
        gossip = getattr(frame, "gossip", ())
        if gossip:
            # This hook cannot yield, so announcement events are left to
            # the direct protocol messages that carry them; joiner
            # introductions must be registered here though, or a later
            # probe escalation picks a slot the transport cannot name.
            for event in self._swim_state().ingest(gossip, self.now):
                if event[0] == "joined":
                    _, slot, name = event
                    self._fd_extra_peers[slot] = name
                    self._fd_last_heard.setdefault(slot, self.now)

    # ------------------------------------------------------------------
    # Gossip-disseminated reliable halt
    # ------------------------------------------------------------------
    def _reliable_halt(self, targets):
        """Reliable halt without an all-to-all broadcast.

        The halt is announced through the gossip channel: the first
        rounds push it (as ping piggyback) to ``fanout`` monitor peers,
        whose dispatch acks the originator and re-gossips, so a large
        group halts in O(log N) epidemic rounds with O(N) total acks.
        Feeders don't gossip and are always halted directly.  Later
        rounds fall back to direct ``halt`` for whoever hasn't acked,
        preserving the bounded-retry ``halt_incomplete`` contract.
        """
        if self._fd is None or self._fd.membership != "gossip":
            yield from super()._reliable_halt(targets)
            return
        swim = self._swim_state()
        swim.announce("halt", self._epoch, swim.slot)
        if self._halting_targets is None:
            # Runtime-joined members halt too — they are full gossip
            # members even though no host enumerated them up front.
            everybody = set(targets) | set(self._fd_extra_peers.values())
            self._halting_targets = {t for t in everybody if t != self.name}
        pending = self._halting_targets
        peers = self._fd_all_peers()
        slot_by_name = {name: slot for slot, name in peers.items()}
        attempt = 0
        while pending:
            use_gossip = attempt < 2
            ping_slots = []
            sends = []
            for t in sorted(pending):
                slot = slot_by_name.get(t)
                if (
                    use_gossip and slot is not None
                    and len(ping_slots) < self._fd.gossip_fanout
                ):
                    ping_slots.append(slot)
                else:
                    sends.append(self.send(t, None, kind=HALT_KIND,
                                           size_bits=1))
            for slot in ping_slots:
                seq = swim.new_seq()
                ping = Ping(
                    seq, swim.slot, swim.incarnation, swim.slot,
                    False, swim.piggyback(PIGGYBACK_LIMIT),
                )
                sends.append(self.send(
                    peers[slot], ping, kind=PING_KIND,
                    size_bits=ping.size_bits(),
                ))
            if sends:
                yield sends
            timeout = self._retry.timeout(attempt)
            while pending:
                msg = yield self.receive_timeout(
                    timeout=timeout,
                    description=f"{self.name} halting {len(pending)} peers",
                )
                if msg is None:
                    break
                if msg.corrupted:
                    continue
                if msg.kind == HALT_ACK_KIND:
                    pending.discard(msg.src)
                    continue
                if msg.kind == HALT_KIND:
                    yield self.send(msg.src, None, kind=HALT_ACK_KIND,
                                    size_bits=HALT_ACK_BITS)
                    pending.discard(msg.src)
                    continue
                yield from self._dispatch(msg)
            attempt += 1
            if attempt > self._retry.max_attempts:
                self.halt_incomplete = True
                return

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def restart(self):
        """Rejoin the gossip group with a fresh incarnation, refuting
        any suspicion accrued while this monitor was down."""
        if (
            self._fd is not None
            and self._fd.membership == "gossip"
            and self._swim is not None
        ):
            self._swim.rejoin()
        return super().restart()
