"""The layered monitor protocol stack.

The hardened detectors are built from three layers (see ``DESIGN.md``
§4 and ``docs/algorithms.md``):

* :mod:`~repro.detect.stack.transport` — layer 1: sequenced app
  streams, hop-acked token frames, tagged exactly-once requests,
  reliable halt, pluggable fixed/adaptive retry policies;
* :mod:`~repro.detect.stack.membership` — layer 2: failure detection
  and epoch-numbered takeover elections, an opt-in middleware over the
  transport.  Two interchangeable membership protocols: all-to-all
  heartbeats (default) and SWIM-style gossip
  (:mod:`~repro.detect.stack.gossip`), selected via
  ``FailureDetectorConfig(membership=...)``;
* :mod:`~repro.detect.stack.compose` — the :func:`harden` factory
  composing a *detection core* (the near-verbatim paper pseudocode in
  ``repro.detect.token_vc`` etc.) with both layers via a small
  per-algorithm glue class.

Detection cores import **only this module** — never
``repro.simulation.faults`` or the layer internals directly (enforced
by ``tools/check_layering.py`` in CI).
"""

from repro.detect.stack.compose import (
    StackedMonitor,
    StackGlue,
    harden,
    hardened_variant,
    register_glue,
)
from repro.detect.stack.gossip import (
    GOSSIP_KINDS,
    JOIN_ACK_KIND,
    JOIN_KIND,
    JOIN_KINDS,
    PING_ACK_KIND,
    PING_KIND,
    PING_REQ_KIND,
    STATE_SYNC_KIND,
    GossipUpdate,
    Join,
    JoinWelcome,
    StateSync,
    SwimState,
)
from repro.detect.stack.join import StandbyMonitor, spawn_joiners
from repro.detect.stack.membership import (
    ELECT_KIND,
    ELECT_OK_KIND,
    HEARTBEAT_KIND,
    REGEN_KIND,
    FailureDetectorConfig,
    FailureDetectorMixin,
)
from repro.detect.stack.transport import (
    CAND_ACK_KIND,
    FEED_JOIN_KIND,
    HALT_ACK_KIND,
    TOKEN_ACK_KIND,
    AdaptiveRetryPolicy,
    FeedJoin,
    AdaptiveSchedule,
    CandidateInbox,
    ReliableEndpoint,
    ReliableFeeder,
    ReliableInjector,
    RetryPolicy,
    Sequenced,
    Tagged,
    TokenFrame,
    TokenInjector,
    token_ack_bits,
)

__all__ = [
    # compose
    "StackedMonitor",
    "StackGlue",
    "harden",
    "hardened_variant",
    "register_glue",
    # gossip
    "GOSSIP_KINDS",
    "JOIN_KINDS",
    "PING_KIND",
    "PING_ACK_KIND",
    "PING_REQ_KIND",
    "JOIN_KIND",
    "JOIN_ACK_KIND",
    "STATE_SYNC_KIND",
    "GossipUpdate",
    "Join",
    "JoinWelcome",
    "StateSync",
    "SwimState",
    # join
    "StandbyMonitor",
    "spawn_joiners",
    # membership
    "HEARTBEAT_KIND",
    "ELECT_KIND",
    "ELECT_OK_KIND",
    "REGEN_KIND",
    "FailureDetectorConfig",
    "FailureDetectorMixin",
    # transport
    "CAND_ACK_KIND",
    "TOKEN_ACK_KIND",
    "HALT_ACK_KIND",
    "FEED_JOIN_KIND",
    "FeedJoin",
    "Sequenced",
    "TokenFrame",
    "Tagged",
    "RetryPolicy",
    "AdaptiveRetryPolicy",
    "AdaptiveSchedule",
    "CandidateInbox",
    "ReliableFeeder",
    "ReliableInjector",
    "ReliableEndpoint",
    "TokenInjector",
    "token_ack_bits",
]
