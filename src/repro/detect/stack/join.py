"""Stack layer 2 (elastic) — live join of genuinely new monitors.

The membership layer's churn support (crash + restart, PR 8) keeps the
monitor *set* fixed: a restarted monitor reclaims its old slot.  This
module adds the missing half of elasticity — a :class:`StandbyMonitor`
that did not exist when the run started can join mid-run:

1. **Join handshake** — the joiner retransmits a ``join`` (carrying its
   globally fresh slot and actor name, incarnation 0) to one *seed
   contact* until the contact's ``join_ack`` arrives with a full
   membership snapshot and the current takeover-election epoch.
2. **Anti-entropy state sync** — the contact follows up with its
   persisted token frames and its cumulative candidate-ack baseline;
   the joiner fast-forwards its :class:`CandidateInbox` to the
   baseline, so its stream starts mid-sequence instead of demanding
   history the feeders may have retired.
3. **Epidemic dissemination** — the contact admits the joiner into its
   SWIM table with a *named* ``alive`` update; the name rides the
   normal piggyback buffer, so every other member learns the joiner at
   O(1) dedicated bytes — no broadcast round (contrast the heartbeat
   detector, where introducing a member costs O(N) hello beacons).
4. **Feeder subscription** — the contact tells its feeder to open a
   second sequenced stream to the joiner from the baseline on
   (``feed_join``), giving the joiner live candidate traffic with the
   same retransmission guarantees as the primary stream.

A standby is a *full* gossip member — it probes, is probed, refutes
suspicion with incarnation bumps, answers takeover elections with its
persisted frames — but holds no predicate slot: it reports
``red=False`` so it never hosts a regenerated token, and
``_fd_can_take_over = False`` so it never initiates an election.  Its
value is purely added robustness (extra frame replicas, extra election
quorum) and scale-out capacity; because it only ever *adds* passive
redundancy, the detected cut of a run with joiners is bit-identical to
the same run without them (the join-exactness suite enforces this).
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.detect.stack.gossip import (
    ALIVE,
    JOIN_ACK_KIND,
    JOIN_KIND,
    STATE_SYNC_KIND,
    GossipUpdate,
    Join,
    JoinWelcome,
    StateSync,
)
from repro.detect.stack.membership import (
    FailureDetectorConfig,
    FailureDetectorMixin,
)
from repro.detect.stack.transport import (
    AdaptiveRetryPolicy,
    ReliableEndpoint,
    RetryPolicy,
)
from repro.simulation.actors import Actor

__all__ = [
    "StandbyMonitor",
    "spawn_joiners",
]


class StandbyMonitor(FailureDetectorMixin, ReliableEndpoint, Actor):
    """A monitor that joins the group mid-run (no predicate slot).

    ``slot`` must be globally fresh — the harness assigns
    ``n + join-index`` so it can never collide with an existing member
    even when several joiners pick the same seed contact concurrently.
    """

    _fd_can_take_over = False

    def __init__(
        self,
        name: str,
        slot: int,
        seed_contact: str,
        seed_slot: int,
        *,
        config: FailureDetectorConfig,
        retry: RetryPolicy | AdaptiveRetryPolicy | None = None,
    ) -> None:
        super().__init__(name)
        if config is None or config.membership != "gossip":
            raise ConfigurationError(
                "a StandbyMonitor requires gossip membership "
                "(FailureDetectorConfig(membership='gossip'))"
            )
        self._init_reliability(retry)
        self._init_failure_detector(config)
        self._slot = slot
        self._seed_contact = seed_contact
        # Everything this standby knows about the group; grows from the
        # seed contact alone to the full snapshot at welcome time.
        self._members: dict[int, str] = {seed_slot: seed_contact}
        self.joined = False
        self.synced = False
        self.candidates_absorbed = 0
        self.detected = False
        self.aborted = False

    # ------------------------------------------------------------------
    # Membership-layer hooks
    # ------------------------------------------------------------------
    def _fd_slot(self) -> int:
        return self._slot

    def _fd_peers(self) -> dict[int, str]:
        return dict(self._members)

    def _fd_is_red(self) -> bool:
        return False  # never hosts a regenerated token

    def _fd_names(self) -> dict[int, str]:
        return {self._slot: self.name}

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self):
        if self.halted:
            yield from self._linger()
            return
        yield from self._join_handshake()
        if self.gave_up:
            return
        while not self.halted:
            self._drain_inbox()
            msg = yield from self._fd_receive(f"{self.name} standing by")
            if msg is None:
                continue  # idle gossip tick; re-examine state
            code = yield from self._dispatch(msg)
            if code == "halt":
                break
        yield from self._linger()

    def _join_handshake(self):
        """Retransmit ``join`` until welcomed (or the budget burns out).

        ``joined`` is persisted, so a crash-restarted standby re-enters
        ``run`` and skips straight to the main loop — its gossip state
        rejoins with a bumped incarnation like any other member.
        """
        attempt = 0
        join = Join(self._slot, self.name)
        while not self.joined and not self.halted:
            yield self.send(
                self._seed_contact, join, kind=JOIN_KIND,
                size_bits=join.size_bits(),
            )
            deadline = self.now + self._retry.timeout(attempt)
            while not self.joined and self.now < deadline:
                msg = yield self.receive_timeout(
                    timeout=deadline - self.now,
                    description=f"{self.name} awaiting join ack",
                )
                if msg is None:
                    break
                code = yield from self._dispatch(msg)
                if code == "halt":
                    return
            if self.joined:
                return
            attempt += 1
            if attempt > self._retry.max_attempts:
                self.gave_up = True
                return

    def _drain_inbox(self) -> None:
        """Absorb in-order candidates (the standby keeps no predicate
        state; consuming bounds the space gauge and counts traffic)."""
        while True:
            entry = self._inbox.pop()
            if entry is None:
                return
            self.metrics.adjust_space(-entry[1])
            self.candidates_absorbed += 1

    # ------------------------------------------------------------------
    # Dispatch: transport, then membership, then the join handshake.
    # ------------------------------------------------------------------
    def _dispatch(self, msg):
        code = yield from self._dispatch_common(msg)
        if code != "unhandled":
            return code
        code = yield from self._dispatch_fd(msg)
        if code != "unhandled":
            return code
        if msg.corrupted:
            return "handled"  # the sender retransmits
        if msg.kind == JOIN_ACK_KIND:
            self._absorb_welcome(msg.payload)
            return "handled"
        if msg.kind == STATE_SYNC_KIND:
            self._absorb_sync(msg.payload)
            return "handled"
        return "handled"  # stragglers from protocols this actor ignores

    def _absorb_welcome(self, welcome: JoinWelcome) -> None:
        """Fold the membership snapshot in; adopt the election epoch."""
        swim = self._swim_state()
        for slot, name, incarnation, status in welcome.members:
            if slot == self._slot:
                continue
            self._members[slot] = name
            swim.add_member(
                slot, name, incarnation=incarnation, announce=False
            )
            if status != ALIVE:
                swim.apply(
                    GossipUpdate(slot, status, incarnation, name), self.now
                )
            self._fd_last_heard.setdefault(slot, self.now)
        self._adopt_epoch(welcome.epoch)
        self.joined = True

    def _absorb_sync(self, sync: StateSync) -> None:
        """Bootstrap persisted frames and the candidate-stream baseline.

        Frames only extend ``_last_frames`` (the election contribution);
        ``_seen_hops`` is left alone so a genuinely routed frame is
        never mistaken for a duplicate of synced state.
        """
        for frame in sync.frames:
            best = self._last_frames.get(frame.gid)
            if best is None or frame.order > best.order:
                self._last_frames[frame.gid] = frame
        for _stream, ack in sync.baselines:
            released = self._inbox.fast_forward(ack)
            if released:
                self.metrics.adjust_space(-released)
        self.synced = True


def spawn_joiners(
    sim,
    plan,
    monitor_names,
    *,
    hardened: bool,
    config: FailureDetectorConfig | None,
    retry: RetryPolicy | AdaptiveRetryPolicy | None = None,
) -> list[StandbyMonitor]:
    """Realize a fault plan's join events as standby monitors.

    One :class:`StandbyMonitor` per ``JoinEvent``, spawned into ``sim``
    at the event's time with slot ``n + index`` (index in ``(at, actor)``
    order, so concurrent joins get distinct slots deterministically).
    The seed contact defaults to the first monitor.  Joins require the
    hardened stack with gossip membership — the heartbeat detector has
    no dissemination channel for an introduction, and a plain detector
    has no membership at all.
    """
    joins = tuple(getattr(plan, "joins", ()) or ()) if plan else ()
    if not joins:
        return []
    if not hardened or config is None or config.membership != "gossip":
        raise ConfigurationError(
            "fault plan contains join events, which require the hardened "
            "stack with gossip membership — pass hardened=True and "
            "failure_detector=FailureDetectorConfig(membership='gossip')"
        )
    monitor_names = list(monitor_names)
    slot_of = {name: slot for slot, name in enumerate(monitor_names)}
    joiners: list[StandbyMonitor] = []
    n = len(monitor_names)
    for index, event in enumerate(sorted(joins, key=lambda j: (j.at, j.actor))):
        contact = event.seed_contact or monitor_names[0]
        if contact not in slot_of:
            raise ConfigurationError(
                f"join seed contact {contact!r} is not a monitor "
                f"(expected one of {monitor_names})"
            )
        if event.actor in slot_of:
            raise ConfigurationError(
                f"joiner {event.actor!r} collides with an existing monitor"
            )
        joiner = StandbyMonitor(
            event.actor, n + index, contact, slot_of[contact],
            config=config, retry=retry,
        )
        sim.spawn_new(event.at, joiner)
        joiners.append(joiner)
    return joiners
