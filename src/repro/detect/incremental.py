"""Embeddable incremental WCP detection — no simulator required.

The detectors in this package replay recorded runs or drive simulated
actors.  A system that wants to *embed* detection — a test harness, a
tracing backend — instead feeds events as they are observed and asks
"has the predicate held yet?".  :class:`IncrementalDetector` provides
that: it maintains the Fig. 2 application-side state (vector clocks,
``firstflag``) and the Garg–Waldecker elimination online, event by
event.

Feeding rules:

* events of one process must be fed in that process's order (calls for
  different processes may interleave arbitrarily);
* a receive must be fed after its matching send (the detector needs the
  send's clock tag) — violating this raises;
* :meth:`close` marks a process's stream finished; once a predicate
  process is closed with no live candidate left, the verdict
  ``impossible`` becomes True.

The first time the candidate heads are complete and pairwise concurrent,
``detected`` latches and ``cut`` holds the *first* satisfying cut —
exactly the reference detector's answer for the same run, which the test
suite asserts over randomized feeds in multiple legal orders.
"""

from __future__ import annotations

from collections import deque
from typing import Mapping

from repro.clocks.vector import VectorClock
from repro.common.errors import DetectionError, InvalidComputationError
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.trace.cuts import Cut

__all__ = ["IncrementalDetector"]


class _ProcessState:
    __slots__ = ("vclock", "firstflag", "vars", "closed")

    def __init__(self, pid: int, width: int, initial: dict) -> None:
        self.vclock = VectorClock.initial(pid, width)
        self.firstflag = True
        self.vars = dict(initial)
        self.closed = False


class IncrementalDetector:
    """Online WCP detection over an observed event stream.

    Parameters
    ----------
    num_processes:
        Total system size ``N``.
    wcp:
        The predicate; clauses are evaluated against each process's
        accumulated variable state.
    initial_vars:
        Optional initial variable assignment per pid.
    """

    def __init__(
        self,
        num_processes: int,
        wcp: WeakConjunctivePredicate,
        initial_vars: Mapping[int, Mapping[str, object]] | None = None,
    ) -> None:
        wcp.check_against(num_processes)
        self._n_total = num_processes
        self._wcp = wcp
        self._slot_of = {pid: k for k, pid in enumerate(wcp.pids)}
        self._procs = [
            _ProcessState(pid, num_processes, dict((initial_vars or {}).get(pid, {})))
            for pid in range(num_processes)
        ]
        self._send_tags: dict[int, tuple[int, VectorClock]] = {}
        # Per predicate slot: queue of (projected vector) candidates.
        self._queues: list[deque[tuple[int, ...]]] = [
            deque() for _ in wcp.pids
        ]
        self._pending: deque[int] = deque()
        self._in_pending = [False] * wcp.n
        self.detected = False
        self.impossible = False
        self.cut: Cut | None = None
        self.eliminations = 0
        self.candidates_seen = 0
        # The very first states may already satisfy clauses.
        for pid in wcp.pids:
            self._maybe_candidate(pid)

    # ------------------------------------------------------------------
    # Event feed
    # ------------------------------------------------------------------
    def observe_internal(
        self, pid: int, updates: Mapping[str, object] | None = None
    ) -> None:
        """An internal event on ``pid`` (optionally updating variables)."""
        state = self._state(pid)
        if updates:
            state.vars.update(updates)
        self._maybe_candidate(pid)

    def observe_send(
        self,
        pid: int,
        msg_id: int,
        dest: int,
        updates: Mapping[str, object] | None = None,
    ) -> None:
        """``pid`` sends message ``msg_id`` to ``dest``."""
        state = self._state(pid)
        if not 0 <= dest < self._n_total or dest == pid:
            raise InvalidComputationError(f"bad destination {dest} for P{pid}")
        if msg_id in self._send_tags:
            raise InvalidComputationError(f"message {msg_id} sent twice")
        if updates:
            state.vars.update(updates)
        self._send_tags[msg_id] = (pid, state.vclock)
        state.vclock = state.vclock.tick(pid)
        state.firstflag = True
        self._maybe_candidate(pid)

    def observe_recv(
        self,
        pid: int,
        msg_id: int,
        updates: Mapping[str, object] | None = None,
    ) -> None:
        """``pid`` receives message ``msg_id`` (send must be observed first)."""
        state = self._state(pid)
        try:
            _sender, tag = self._send_tags[msg_id]
        except KeyError:
            raise InvalidComputationError(
                f"receive of message {msg_id} observed before its send"
            ) from None
        if updates:
            state.vars.update(updates)
        state.vclock = state.vclock.merged(tag).tick(pid)
        state.firstflag = True
        self._maybe_candidate(pid)

    def close(self, pid: int) -> None:
        """Mark ``pid``'s stream as finished (idempotent; enables
        the ``impossible`` verdict)."""
        if not 0 <= pid < self._n_total:
            raise DetectionError(f"pid {pid} out of range (N={self._n_total})")
        self._procs[pid].closed = True
        self._check_impossible()

    # ------------------------------------------------------------------
    # Detection core
    # ------------------------------------------------------------------
    def _maybe_candidate(self, pid: int) -> None:
        if self.detected or pid not in self._slot_of:
            return
        state = self._procs[pid]
        if not state.firstflag or not self._wcp.clause(pid)(state.vars):
            return
        state.firstflag = False
        self.candidates_seen += 1
        slot = self._slot_of[pid]
        was_empty = not self._queues[slot]
        self._queues[slot].append(
            tuple(state.vclock[p] for p in self._wcp.pids)
        )
        if was_empty:
            self._mark_pending(slot)
        self._eliminate()

    def _mark_pending(self, slot: int) -> None:
        if not self._in_pending[slot]:
            self._in_pending[slot] = True
            self._pending.append(slot)

    def _hb(self, i: int, j: int) -> bool:
        return self._queues[i][0][i] <= self._queues[j][0][i]

    def _eliminate(self) -> None:
        n = self._wcp.n
        queues = self._queues
        while self._pending:
            i = self._pending.popleft()
            self._in_pending[i] = False
            if not queues[i]:
                continue
            for j in range(n):
                if j == i or not queues[j]:
                    continue
                if self._hb(i, j):
                    loser = i
                elif self._hb(j, i):
                    loser = j
                else:
                    continue
                queues[loser].popleft()
                self.eliminations += 1
                if queues[loser]:
                    self._mark_pending(loser)
                if loser == i:
                    break
        if all(queues[s] for s in range(n)):
            self.detected = True
            self.cut = Cut(
                self._wcp.pids,
                tuple(queues[s][0][s] for s in range(n)),
            )
        else:
            self._check_impossible()

    def _check_impossible(self) -> None:
        if self.detected or self.impossible:
            return
        for pid in self._wcp.pids:
            slot = self._slot_of[pid]
            if self._procs[pid].closed and not self._queues[slot]:
                self.impossible = True
                return

    # ------------------------------------------------------------------
    def verdict(self) -> str:
        """One of ``"detected"``, ``"impossible"``, ``"open"``."""
        if self.detected:
            return "detected"
        if self.impossible:
            return "impossible"
        return "open"

    def _state(self, pid: int) -> _ProcessState:
        if not 0 <= pid < self._n_total:
            raise DetectionError(f"pid {pid} out of range (N={self._n_total})")
        state = self._procs[pid]
        if state.closed:
            raise DetectionError(f"P{pid} is closed; no more events allowed")
        return state
