"""Uniform entry point: run any registered detector on any computation.

``run_detector("token_vc", computation, wcp, seed=3)`` dispatches to the
algorithm module and returns its :class:`DetectionReport`.  The registry
is the single place experiments and examples enumerate algorithms from.
"""

from __future__ import annotations

import sys
from typing import Callable, Protocol

from repro.common.errors import ConfigurationError
from repro.detect import (
    centralized,
    direct_dep,
    direct_dep_parallel,
    lattice_cm,
    reference,
    token_vc,
    token_vc_multi,
)
from repro.detect.base import MONITOR_PREFIX, TOKEN_KIND, DetectionReport
from repro.detect.stack import harden, hardened_variant
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.trace.computation import Computation

__all__ = [
    "DETECTORS",
    "FAULT_CAPABLE",
    "run_detector",
    "run_service",
    "offline_detectors",
    "online_detectors",
    "paper_units",
    "harden",
    "hardened_variant",
]


class _DetectFn(Protocol):
    def __call__(
        self,
        computation: Computation,
        wcp: WeakConjunctivePredicate,
        **options: object,
    ) -> DetectionReport: ...


# Offline detectors analyze the trace directly; online ones simulate the
# full distributed protocol and accept seed/channel_model/spacing options.
_OFFLINE: dict[str, Callable] = {
    "reference": reference.detect,
    "lattice": lattice_cm.detect,
}
_ONLINE: dict[str, Callable] = {
    "centralized": centralized.detect,
    "token_vc": token_vc.detect,
    "token_vc_multi": token_vc_multi.detect,
    "direct_dep": direct_dep.detect,
    "direct_dep_parallel": direct_dep_parallel.detect,
}
DETECTORS: dict[str, Callable] = {**_OFFLINE, **_ONLINE}

#: Online detectors with a hardened (loss/crash-tolerant) variant; only
#: these accept the ``faults`` / ``hardened`` / ``retry`` options.  Each
#: hardened variant is pure composition — ``harden(core)`` over the
#: :mod:`repro.detect.stack` layers — so every online token detector
#: with registered glue appears here.
FAULT_CAPABLE: frozenset[str] = frozenset(
    {"token_vc", "token_vc_multi", "direct_dep", "direct_dep_parallel"}
)


def offline_detectors() -> tuple[str, ...]:
    """Names of trace-analysis detectors (no simulation options)."""
    return tuple(_OFFLINE)


def online_detectors() -> tuple[str, ...]:
    """Names of simulated distributed detectors."""
    return tuple(_ONLINE)


def _summary_line(name: str, report: DetectionReport) -> str:
    """The one-line per-run summary printed by ``verbose=True``."""
    parts = [f"[repro] {name}: {report.outcome}"]
    if report.cut is not None:
        parts.append(f"cut={tuple(report.cut.intervals)}")
    if report.metrics is not None:
        parts.append(
            f"msgs={report.metrics.total_messages()} "
            f"bits={report.metrics.total_bits()} "
            f"work={report.metrics.total_work()}"
        )
    if report.sim is not None and report.sim.faults is not None:
        f = report.sim.faults
        parts.append(
            f"faults={f.total_message_faults} crashes={f.crashes}"
        )
    if report.detection_time is not None:
        parts.append(f"t={report.detection_time:g}")
    return " ".join(parts)


def paper_units(report: DetectionReport) -> dict[str, object]:
    """The run's deterministic cost metrics in the paper's units.

    Everything here is a counted quantity (messages, bits, work units,
    token hops, comparisons, ...) plus the three-way outcome — fully
    determined by the computation, detector and seed, never by wall
    clock.  The sweep harness compares these values *exactly* against
    committed baselines; wall time is tracked separately with a
    tolerance.  Numeric ``extras`` ride along (booleans as 0/1); metric
    names already claimed by the board win on collision.
    """
    units: dict[str, object] = {"outcome": report.outcome}
    board = report.metrics
    if board is not None:
        units["mon_msgs"] = board.total_messages(MONITOR_PREFIX)
        units["mon_bits"] = board.total_bits(MONITOR_PREFIX)
        units["total_work"] = board.total_work()
        units["max_work"] = board.max_work_per_actor(MONITOR_PREFIX)
        units["max_space_bits"] = board.max_space_per_actor(MONITOR_PREFIX)
        units["token_hops"] = board.messages_of_kind(TOKEN_KIND)
    for key, value in report.extras.items():
        if isinstance(value, bool):
            units.setdefault(key, int(value))
        elif isinstance(value, (int, float)):
            units.setdefault(key, value)
    return units


def run_detector(
    name: str,
    computation: Computation,
    wcp: WeakConjunctivePredicate,
    **options: object,
) -> DetectionReport:
    """Run detector ``name``; online detectors accept ``seed``,
    ``channel_model``, ``spacing``, ``clock_backend`` (``"list"`` |
    ``"packed"`` — the vector-clock representation; identical verdicts
    and units, packed is faster on large cells) and algorithm-specific
    options.  Detectors in :data:`FAULT_CAPABLE` additionally accept ``faults``
    (a :class:`~repro.simulation.faults.FaultPlan`), ``hardened``,
    ``retry`` and ``failure_detector`` (a
    :class:`~repro.detect.stack.FailureDetectorConfig` enabling
    heartbeat failure detection with token takeover).

    ``check_invariants=True`` (online detectors only) attaches a
    streaming :class:`~repro.obs.invariants.InvariantMonitor` to the
    run's observers and folds the result into ``report.extras``:
    ``invariant_violations`` (a count, so sweeps compare it exactly)
    plus ``invariant_summary`` / ``invariant_violation_details`` when
    anything fired.  The monitor is passive — outcomes and paper units
    are unchanged by its presence.

    ``verbose=True`` (accepted by every detector, offline included)
    prints a one-line outcome/cost summary to stderr after the run, so
    scripts and examples can show progress without scraping report
    internals.
    """
    verbose = bool(options.pop("verbose", False))
    check_invariants = bool(options.pop("check_invariants", False))
    try:
        fn = DETECTORS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown detector {name!r}; available: {sorted(DETECTORS)}"
        ) from None
    if name in _OFFLINE and options:
        raise ConfigurationError(
            f"offline detector {name!r} takes no options, got {sorted(options)}"
        )
    monitor = None
    if check_invariants:
        if name in _OFFLINE:
            raise ConfigurationError(
                f"offline detector {name!r} has no live message stream; "
                f"check_invariants requires one of {sorted(_ONLINE)}"
            )
        # Imported lazily: repro.obs imports repro.detect.base, so a
        # module-level import here would be circular.
        from repro.obs.invariants import InvariantMonitor

        fd = options.get("failure_detector")
        monitor = InvariantMonitor(
            refutation_window=getattr(fd, "suspicion_after", None),
            probe_interval=getattr(fd, "heartbeat_interval", 4.0),
            partition_grace=getattr(fd, "grace", 30.0),
        )
        observers = list(options.get("observers") or ())  # type: ignore[call-overload]
        observers.append(monitor)
        options["observers"] = observers
    if name not in FAULT_CAPABLE:
        bad = sorted(
            k
            for k in ("faults", "hardened", "retry", "failure_detector")
            if k in options
        )
        if bad:
            raise ConfigurationError(
                f"detector {name!r} has no hardened variant; options {bad} "
                f"require one of {sorted(FAULT_CAPABLE)}"
            )
    report = fn(computation, wcp, **options)
    if monitor is not None:
        report.extras["invariant_violations"] = len(monitor.violations)
        if monitor.violations:
            report.extras["invariant_summary"] = monitor.summary()
            report.extras["invariant_violation_details"] = [
                v.as_dict() for v in monitor.violations[:20]
            ]
    if verbose:
        print(_summary_line(name, report), file=sys.stderr)
    return report


def run_service(
    name: str,
    computation: Computation,
    registry_or_predicates,
    **options: object,
):
    """Run the multi-predicate detection service; returns a
    :class:`~repro.detect.service.ServiceReport` with one
    :class:`~repro.detect.service.PredicateOutcome` per registered
    predicate.

    ``registry_or_predicates`` is a
    :class:`~repro.detect.service.PredicateRegistry`, or any iterable of
    ``(pred_id, wcp)`` pairs / mapping from which one is built.  For
    detectors with a multiplexed service implementation (currently
    ``token_vc``) the run shares one hardened candidate stream per app
    process and multiplexes per-predicate token frames over it;
    every other detector runs one independent pass per predicate over
    the same computation's cached causality analysis.  Either way, each
    predicate's verdict and first cut are identical to an independent
    ``run_detector`` run.

    ``verbose=True`` prints one summary line per predicate to stderr.
    """
    # Imported lazily: the service dispatcher calls back into
    # run_detector for the amortized path.
    from repro.detect.service import PredicateRegistry, SharedCausalityDispatcher

    verbose = bool(options.pop("verbose", False))
    if isinstance(registry_or_predicates, PredicateRegistry):
        registry = registry_or_predicates
    else:
        registry = PredicateRegistry()
        entries = (
            registry_or_predicates.items()
            if hasattr(registry_or_predicates, "items")
            else registry_or_predicates
        )
        for pred_id, wcp in entries:
            registry.register(pred_id, wcp)
    if name not in DETECTORS:
        raise ConfigurationError(
            f"unknown detector {name!r}; available: {sorted(DETECTORS)}"
        )
    dispatcher = SharedCausalityDispatcher(
        registry, computation, detector=name, **options
    )
    report = dispatcher.run()
    if verbose:
        for pred_id, out in report.outcomes.items():
            line = f"[repro] service {name} {pred_id}: {out.outcome}"
            if out.cut is not None:
                line += f" cut={tuple(out.cut.intervals)}"
            print(line, file=sys.stderr)
    return report
