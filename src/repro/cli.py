"""Command-line interface: generate workloads, detect, run experiments.

Installed as the ``repro`` console script::

    repro generate --processes 4 --sends 8 --seed 7 --density 0.2 \
                   --plant-final-cut --out trace.json
    repro stats trace.json --pids 0,1,2,3
    repro detect trace.json --detector token_vc --pids 0,1,2,3
    repro detect trace.json --trace-out run.jsonl --json
    repro report run.jsonl
    repro experiments --only e1,e6
    repro sweep --matrix benchmarks/sweeps/soak.json --workers 4 --out agg.json
    repro bench-check benchmarks/baselines/*.json --workers 4

``detect`` builds the WCP from a boolean flag variable (the workload
generators' convention); bring your own predicates through the Python
API for anything richer.  ``--trace-out`` records a causal span trace
(JSONL, see ``docs/observability.md``) that ``repro report`` renders as
a per-actor timeline with token itinerary and fault overlay; ``--json``
emits the verdict and full metrics machine-readably for CI.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Sequence

from repro.analysis import render_table
from repro.predicates import WeakConjunctivePredicate
from repro.trace import compute_stats, loads
from repro.trace.generators import WorkloadSpec, generate
from repro.trace.serialization import dumps

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "e1": ("run_e1_token_vc", {}),
    "e2": ("run_e2_direct_dep", {}),
    "e3": ("run_e3_crossover", {}),
    "e4": ("run_e4_multi_token", {}),
    "e5": ("run_e5_parallel_dd", {}),
    "e6": ("run_e6_lower_bound", {}),
    "e7": ("run_e7_vs_centralized", {}),
    "e8": ("run_e8_agreement", {}),
    "e9": ("run_e9_routing_ablation", {}),
    "e10": ("run_e10_average_case", {}),
    "e11": ("run_e11_detection_latency", {}),
    "e12": ("run_e12_strong_predicates", {}),
    "e13": ("run_e13_gcp_online", {}),
    "e14": ("run_e14_fault_overhead", {}),
}


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Distributed detection of conjunctive predicates "
            "(Garg & Chase, ICDCS 1995)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a workload trace (JSON)")
    gen.add_argument("--processes", type=int, required=True, help="N")
    gen.add_argument("--sends", type=int, required=True, help="sends/process")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--density", type=float, default=0.1,
                     help="predicate flag density")
    gen.add_argument("--pattern", default="uniform",
                     choices=("uniform", "ring", "client_server", "pairs"))
    gen.add_argument("--plant-final-cut", action="store_true",
                     help="guarantee the WCP holds at the final cut")
    gen.add_argument("--out", type=pathlib.Path, default=None,
                     help="output file (default: stdout)")

    det = sub.add_parser("detect", help="run a detector on a trace file")
    det.add_argument("trace", type=pathlib.Path)
    det.add_argument("--detector", default="token_vc")
    det.add_argument("--pids", default=None,
                     help="comma-separated predicate pids (default: all)")
    det.add_argument("--var", default="flag", help="flag variable name")
    det.add_argument("--seed", type=int, default=0)
    det.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject faults and run the hardened protocol, e.g. "
             "'drop:token:0.2,dup:*:0.05,crash:mon-1:4:9' "
             "(see repro.simulation.faults.FaultPlan.parse)",
    )
    det.add_argument(
        "--no-hardened", action="store_true",
        help="with --faults, run the plain (fault-intolerant) protocol "
             "anyway, to watch it fail",
    )
    det.add_argument(
        "--self-heal", action="store_true",
        help="with --faults, enable the failure detector so surviving "
             "monitors elect a takeover and regenerate a silent token "
             "(see repro.detect.stack.membership)",
    )
    det.add_argument(
        "--membership", choices=("heartbeat", "gossip"), default="heartbeat",
        help="with --self-heal, the liveness protocol: all-to-all "
             "heartbeats (default) or SWIM-style gossip with "
             "piggybacked membership updates",
    )
    det.add_argument(
        "--gossip-fanout", type=int, default=3, metavar="K",
        help="with --membership gossip, the indirect-probe and "
             "dissemination fanout (default 3)",
    )
    det.add_argument(
        "--gossip-interval", type=float, default=None, metavar="S",
        help="with --membership gossip, seconds between SWIM probe "
             "rounds (default: the config default)",
    )
    det.add_argument(
        "--gossip-timeout", type=float, default=None, metavar="S",
        help="with --membership gossip, the per-stage probe deadline "
             "before suspicion escalates (default: one probe interval)",
    )
    det.add_argument(
        "--clock-backend", choices=("list", "packed"), default="list",
        help="vector-clock representation for snapshot extraction "
             "(online detectors only): validated immutable clocks "
             "(list, default) or the array('q') fast path (packed); "
             "verdicts and paper units are identical either way",
    )
    det.add_argument(
        "--json", action="store_true",
        help="print the verdict, metrics totals and fault summary as "
             "JSON (machine-readable; suppresses the human output)",
    )
    det.add_argument(
        "--trace-out", type=pathlib.Path, default=None, metavar="FILE",
        help="record a causal span trace of the protocol run to FILE "
             "(JSONL; online detectors only; render with 'repro report')",
    )
    det.add_argument(
        "--invariants", action="store_true",
        help="attach the streaming protocol-invariant monitors (token "
             "conservation, vc monotonicity, candidate ordering, "
             "election safety, SWIM lifecycle) to the run; violations "
             "are reported and folded into the extras (online "
             "detectors only)",
    )
    det.add_argument(
        "--flight-recorder", type=pathlib.Path, default=None,
        metavar="FILE",
        help="keep an always-on ring buffer of the last K message "
             "events per actor and dump it to FILE (trace JSONL) only "
             "if the run crashes, degrades or violates an invariant",
    )
    det.add_argument(
        "--verbose", action="store_true",
        help="print a one-line per-run summary to stderr",
    )
    det.add_argument(
        "--predicates-file", type=pathlib.Path, default=None, metavar="FILE",
        help="run the multi-predicate service instead of a single WCP: "
             "FILE is a JSON list of {id, pids[, var]} entries (see "
             "'repro service', which this delegates to)",
    )

    svc = sub.add_parser(
        "service",
        help="run the multi-predicate detection service on a trace file",
    )
    svc.add_argument("trace", type=pathlib.Path)
    svc.add_argument(
        "--predicates-file", type=pathlib.Path, required=True, metavar="FILE",
        help="JSON list of registered predicates: "
             '[{"id": "p0", "pids": [0,1,2], "var": "flag"}, ...]',
    )
    svc.add_argument("--detector", default="token_vc",
                     help="detector family; token_vc runs the multiplexed "
                          "service, others run one amortized pass per "
                          "predicate over the shared causality analysis")
    svc.add_argument("--seed", type=int, default=0)
    svc.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject faults (multiplexed/fault-capable detectors only); "
             "same SPEC grammar as 'repro detect --faults'",
    )
    svc.add_argument(
        "--clock-backend", choices=("list", "packed"), default="list",
        help="vector-clock representation for the shared snapshot "
             "extraction (verdicts identical either way)",
    )
    svc.add_argument(
        "--trace-out", type=pathlib.Path, default=None, metavar="FILE",
        help="record a causal span trace of the multiplexed run to FILE "
             "(JSONL; render with 'repro report' for per-predicate rows)",
    )
    svc.add_argument(
        "--json", action="store_true",
        help="print per-predicate verdicts and service metrics as JSON",
    )
    svc.add_argument(
        "--verbose", action="store_true",
        help="print a one-line per-predicate summary to stderr",
    )

    stats = sub.add_parser("stats", help="summarize a trace file")
    stats.add_argument("trace", type=pathlib.Path)
    stats.add_argument("--pids", default=None,
                       help="also count predicate candidates for these pids")
    stats.add_argument("--var", default="flag")

    exp = sub.add_parser("experiments", help="run the paper's experiments")
    exp.add_argument("--only", default=None,
                     help=f"comma-separated subset of {sorted(_EXPERIMENTS)}")

    show = sub.add_parser(
        "show", help="render a trace as an ASCII space-time diagram"
    )
    show.add_argument("trace", type=pathlib.Path)
    show.add_argument("--pids", default=None,
                      help="mark snapshot emissions for these predicate pids")
    show.add_argument("--var", default="flag")
    show.add_argument("--cut", action="store_true",
                      help="also detect and draw the first satisfying cut")

    strong = sub.add_parser(
        "definitely",
        help="decide definitely(φ) for a conjunctive flag predicate",
    )
    strong.add_argument("trace", type=pathlib.Path)
    strong.add_argument("--pids", default=None)
    strong.add_argument("--var", default="flag")

    rep = sub.add_parser(
        "report",
        help="render a span-trace JSONL file (from detect --trace-out) "
             "as an ASCII run report",
    )
    rep.add_argument("trace", type=pathlib.Path,
                     help="a .jsonl span trace written by detect --trace-out")
    rep.add_argument("--width", type=int, default=72,
                     help="timeline width in columns (default 72)")

    ver = sub.add_parser(
        "verify-trace",
        help="replay a recorded span trace (detect --trace-out or a "
             "flight-recorder dump) through the protocol invariant "
             "monitors offline",
    )
    ver.add_argument("trace", type=pathlib.Path,
                     help="a .jsonl span trace to verify")
    ver.add_argument("--refutation-window", type=float, default=None,
                     metavar="S",
                     help="enable the SWIM suspect->confirm timing check "
                          "with this refutation window in simulated "
                          "seconds (the failure detector's "
                          "suspicion_after; default: timing check off)")
    ver.add_argument("--probe-interval", type=float, default=4.0,
                     metavar="S",
                     help="probe period used as emission slack by the "
                          "timing check (default 4.0)")
    ver.add_argument("--json", action="store_true",
                     help="print the violation records as JSON")

    imp = sub.add_parser(
        "import-log",
        help="convert a plain-text event log into a trace JSON file",
    )
    imp.add_argument("log", type=pathlib.Path)
    imp.add_argument("--out", type=pathlib.Path, default=None,
                     help="output trace file (default: stdout)")
    imp.add_argument("--allow-unreceived", action="store_true",
                     help="permit sends without a matching receive")

    swp = sub.add_parser(
        "sweep",
        help="run a (detector x workload x seed x fault) matrix in "
             "parallel and aggregate paper-unit metrics",
    )
    swp.add_argument("--matrix", type=pathlib.Path, default=None,
                     metavar="FILE",
                     help="JSON matrix description (see docs/benchmarking.md); "
                          "overrides the inline axis flags")
    swp.add_argument("--name", default="adhoc",
                     help="matrix name for inline sweeps (default: adhoc)")
    swp.add_argument("--detectors", default="token_vc",
                     help="comma-separated detector names")
    swp.add_argument("--processes", default="4",
                     help="comma-separated Ns, ranges allowed (e.g. 4,8 or 2..6)")
    swp.add_argument("--sends", default="8",
                     help="comma-separated sends/process, ranges allowed")
    swp.add_argument("--seeds", default="0",
                     help="comma-separated seeds, ranges allowed (e.g. 0..4)")
    swp.add_argument("--patterns", default="uniform",
                     help="comma-separated communication patterns")
    swp.add_argument("--densities", default="0.1",
                     help="comma-separated predicate densities")
    swp.add_argument("--faults", action="append", default=None,
                     metavar="SPEC",
                     help="fault plan axis entry; repeatable; 'none' adds a "
                          "fault-free variant (default: fault-free only)")
    swp.add_argument("--plant-final-cut", action="store_true",
                     help="guarantee the WCP holds at the final cut of every "
                          "generated workload")
    swp.add_argument("--self-heal", action="store_true",
                     help="enable the failure detector on fault cells of "
                          "fault-capable detectors")
    swp.add_argument("--membership", default="heartbeat",
                     help="comma-separated liveness protocols for self-heal "
                          "cells: heartbeat and/or gossip (default: heartbeat)")
    swp.add_argument("--gossip-fanouts", default="3",
                     help="comma-separated SWIM fanouts, ranges allowed; "
                          "multiplies gossip cells only (default: 3)")
    swp.add_argument("--gossip-intervals", default="none",
                     help="comma-separated SWIM probe intervals in seconds "
                          "('none' = config default); multiplies gossip "
                          "cells only (default: none)")
    swp.add_argument("--gossip-timeouts", default="none",
                     help="comma-separated SWIM probe deadlines in seconds "
                          "('none' = one probe interval); multiplies "
                          "gossip cells only (default: none)")
    swp.add_argument("--check-invariants", action="store_true",
                     help="run every online cell under the streaming "
                          "protocol-invariant monitors; violation counts "
                          "fold into the per-cell paper units")
    swp.add_argument("--clock-backends", default="list",
                     help="comma-separated vector-clock backends (list "
                          "and/or packed); multiplies online cells only "
                          "(default: list)")
    swp.add_argument("--n-predicates", default="1",
                     help="comma-separated predicate counts, ranges "
                          "allowed; multiplies multiplexed-detector cells "
                          "only — each P > 1 cell runs P derived predicates "
                          "over one shared service (default: 1)")
    swp.add_argument("--trace-sample", type=int, default=0, metavar="N",
                     help="record full span traces for the N lowest "
                          "seeds of every group (deterministic sample; "
                          "default 0 = off)")
    swp.add_argument("--trace-dir", type=pathlib.Path, default=None,
                     metavar="DIR",
                     help="directory for --trace-sample traces "
                          "(default: sweep-traces)")
    swp.add_argument("--flight-dir", type=pathlib.Path, default=None,
                     metavar="DIR",
                     help="arm a flight recorder on every online cell "
                          "and dump ring-buffer JSONL here for cells "
                          "that error, degrade or violate an invariant")
    swp.add_argument("--workers", type=int, default=1,
                     help="worker processes (default 1 = run inline)")
    swp.add_argument("--cache-dir", type=pathlib.Path, default=None,
                     help="workload cache directory (default: "
                          "$REPRO_CACHE_DIR or .repro-cache/workloads)")
    swp.add_argument("--out", type=pathlib.Path, default=None, metavar="FILE",
                     help="write the aggregate repro-bench/1 JSON to FILE")
    swp.add_argument("--quiet", action="store_true",
                     help="suppress the per-group summary table")

    chk = sub.add_parser(
        "bench-check",
        help="re-run the matrices recorded in committed baselines and "
             "fail on any paper-unit drift or wall-time regression",
    )
    chk.add_argument("baselines", type=pathlib.Path, nargs="+",
                     help="baseline JSON files written by 'repro sweep --out'")
    chk.add_argument("--workers", type=int, default=1,
                     help="worker processes for the fresh sweeps")
    chk.add_argument("--wall-tolerance", type=float, default=None,
                     help="max allowed fresh/baseline wall-median ratio "
                          "(default 5.0)")
    chk.add_argument("--cache-dir", type=pathlib.Path, default=None,
                     help="workload cache directory")
    chk.add_argument("--summary-out", type=pathlib.Path, default=None,
                     metavar="FILE",
                     help="append a markdown diff summary to FILE "
                          "(e.g. $GITHUB_STEP_SUMMARY)")
    chk.add_argument("--update", action="store_true",
                     help="rewrite the baseline files with the fresh results "
                          "instead of failing (intentional re-baseline)")
    return parser


def _parse_pids(text: str | None, num_processes: int) -> tuple[int, ...]:
    if text is None:
        return tuple(range(num_processes))
    try:
        pids = tuple(sorted({int(p) for p in text.split(",") if p.strip()}))
    except ValueError:
        raise SystemExit(f"error: --pids must be comma-separated ints: {text!r}")
    if not pids:
        raise SystemExit("error: --pids must name at least one process")
    return pids


def _cmd_generate(args: argparse.Namespace) -> int:
    spec = WorkloadSpec(
        num_processes=args.processes,
        sends_per_process=args.sends,
        seed=args.seed,
        predicate_density=args.density,
        pattern=args.pattern,
        plant_final_cut=args.plant_final_cut,
    )
    text = dumps(generate(spec), indent=2)
    if args.out is None:
        print(text)
    else:
        args.out.write_text(text + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    return 0


def _load_trace(path: pathlib.Path):
    if not path.exists():
        raise SystemExit(f"error: no such trace file: {path}")
    from repro.common.errors import ReproError

    try:
        return loads(path.read_text(encoding="utf-8"))
    except ReproError as exc:
        raise SystemExit(f"error: cannot load trace {path}: {exc}")


def _load_predicates_file(path: pathlib.Path, num_processes: int):
    """Parse a service predicates file into ``(pred_id, wcp)`` entries.

    The file is a JSON list of ``{"id": ..., "pids": [...]}`` objects;
    an optional ``"var"`` picks the boolean flag variable (default
    ``flag``, the workload generators' convention).
    """
    import json

    if not path.exists():
        raise SystemExit(f"error: no such predicates file: {path}")
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: bad JSON in {path}: {exc}")
    if not isinstance(doc, list) or not doc:
        raise SystemExit(
            f"error: {path} must hold a non-empty JSON list of predicates"
        )
    entries = []
    for i, item in enumerate(doc):
        if not isinstance(item, dict) or "pids" not in item:
            raise SystemExit(
                f"error: {path}[{i}] must be an object with a 'pids' list"
            )
        pred_id = str(item.get("id", f"p{i}"))
        try:
            pids = tuple(sorted({int(p) for p in item["pids"]}))
        except (TypeError, ValueError):
            raise SystemExit(
                f"error: {path}[{i}]: 'pids' must be a list of ints"
            )
        if not pids:
            raise SystemExit(f"error: {path}[{i}]: 'pids' is empty")
        bad = [p for p in pids if p >= num_processes or p < 0]
        if bad:
            raise SystemExit(
                f"error: {path}[{i}] names processes {bad} but the trace "
                f"has {num_processes}"
            )
        var = str(item.get("var", "flag"))
        entries.append(
            (pred_id, WeakConjunctivePredicate.of_flags(pids, var=var))
        )
    return entries


def _cmd_service(args: argparse.Namespace) -> int:
    import json

    from repro.common.errors import ConfigurationError, ReproError
    from repro.detect.runner import DETECTORS, run_service

    if args.detector not in DETECTORS:
        raise SystemExit(
            f"error: unknown detector {args.detector!r}; "
            f"choose from {sorted(DETECTORS)}"
        )
    comp = _load_trace(args.trace)
    entries = _load_predicates_file(args.predicates_file, comp.num_processes)
    options: dict = {"seed": args.seed}
    if args.clock_backend != "list":
        options["clock_backend"] = args.clock_backend
    if args.faults is not None:
        from repro.simulation.faults import FaultPlan

        try:
            options["faults"] = FaultPlan.parse(args.faults)
        except ConfigurationError as exc:
            raise SystemExit(f"error: {exc}")
    tracer = None
    if args.trace_out is not None:
        from repro.obs import SpanTracer

        tracer = SpanTracer()
        options["observers"] = [tracer]
    try:
        report = run_service(
            args.detector, comp, entries, verbose=args.verbose, **options
        )
    except ReproError as exc:
        print(
            f"error: service run ({args.detector!r}) failed: {exc}",
            file=sys.stderr,
        )
        return 3
    from repro.detect.service import service_trace_meta

    # No wall_seconds: CLI output is contractually deterministic, so the
    # wall-derived predicates/sec headline lives in bench_service_scale
    # (where wall columns are informational), not here.
    meta = service_trace_meta(report)
    if tracer is not None:
        from repro.obs import dump_jsonl

        trace_meta = dict(meta)
        trace_meta["detector"] = report.detector
        if report.metrics is not None:
            trace_meta["metrics"] = report.metrics.snapshot()
        if report.sim is not None and report.sim.faults is not None:
            trace_meta["faults"] = report.sim.faults.as_dict()
        trace = tracer.finish(
            report.sim.time if report.sim is not None else None, **trace_meta
        )
        dump_jsonl(trace, args.trace_out)
        if not args.json:
            print(f"trace:     {args.trace_out} ({len(trace)} spans)")
    if args.json:
        doc = {
            "detector": report.detector,
            "multiplexed": report.multiplexed,
            "n_predicates": report.n_predicates,
            "predicates": meta["predicates"],
            "service": meta["service"],
            "extras": dict(report.extras),
        }
        if report.metrics is not None:
            doc["metrics"] = report.metrics.snapshot()
        print(json.dumps(doc, indent=2, default=str))
    else:
        print(f"detector:     {report.detector} "
              f"({'multiplexed' if report.multiplexed else 'amortized'})")
        print(f"predicates:   {report.n_predicates}")
        for row in meta["predicates"]:
            cut = row["cut"]
            line = f"  {row['pred_id']}: {row['outcome']}"
            if cut is not None:
                line += f" cut={tuple(cut)}"
            if row["detection_time"] is not None:
                line += f" t={row['detection_time']:g}"
            print(line)
        service = meta["service"]
        if service.get("predicates_per_sec") is not None:
            print(f"predicates/sec: {service['predicates_per_sec']:.1f}")
        if service.get("marginal_bits_per_predicate") is not None:
            print(
                "marginal bits/predicate: "
                f"{service['marginal_bits_per_predicate']:.0f} "
                f"(shared stream: {service.get('shared_stream_bits')})"
            )
    if any(o.degraded for o in report.outcomes.values()):
        return 2
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.detect.runner import DETECTORS, offline_detectors, run_detector

    if args.predicates_file is not None:
        # Multi-predicate runs route through the service; flags that
        # only make sense for a single-predicate run are rejected.
        for flag, present in (
            ("--pids", args.pids is not None),
            ("--self-heal", args.self_heal),
            ("--no-hardened", args.no_hardened),
            ("--invariants", args.invariants),
            ("--flight-recorder", args.flight_recorder is not None),
        ):
            if present:
                raise SystemExit(
                    f"error: {flag} does not apply to --predicates-file "
                    f"runs; use 'repro service' options"
                )
        return _cmd_service(args)
    if args.detector not in DETECTORS:
        raise SystemExit(
            f"error: unknown detector {args.detector!r}; "
            f"choose from {sorted(DETECTORS)}"
        )
    comp = _load_trace(args.trace)
    pids = _parse_pids(args.pids, comp.num_processes)
    wcp = WeakConjunctivePredicate.of_flags(pids, var=args.var)
    offline = args.detector in offline_detectors()
    options = {} if offline else {"seed": args.seed}
    if args.clock_backend != "list":
        if offline:
            raise SystemExit(
                "error: --clock-backend selects the snapshot-extraction "
                "representation of a protocol simulation; it requires "
                f"an online detector, not {args.detector!r}"
            )
        options["clock_backend"] = args.clock_backend
    tracer = None
    if args.trace_out is not None:
        if offline:
            raise SystemExit(
                "error: --trace-out records a protocol simulation; it "
                f"requires an online detector, not {args.detector!r}"
            )
        from repro.obs import SpanTracer

        tracer = SpanTracer()
        options["observers"] = [tracer]
    recorder = None
    if args.invariants or args.flight_recorder is not None:
        if offline:
            raise SystemExit(
                "error: --invariants and --flight-recorder observe a "
                "protocol simulation; they require an online detector, "
                f"not {args.detector!r}"
            )
    if args.invariants:
        options["check_invariants"] = True
    if args.flight_recorder is not None:
        from repro.obs import FlightRecorder

        recorder = FlightRecorder()
        options.setdefault("observers", []).append(recorder)
    if args.self_heal and args.faults is None:
        raise SystemExit("error: --self-heal requires --faults")
    if args.faults is not None:
        from repro.common.errors import ConfigurationError
        from repro.detect.runner import FAULT_CAPABLE
        from repro.simulation.faults import FaultPlan

        if args.detector not in FAULT_CAPABLE:
            raise SystemExit(
                f"error: --faults requires a fault-capable detector: "
                f"{sorted(FAULT_CAPABLE)}"
            )
        try:
            plan = FaultPlan.parse(args.faults)
        except ConfigurationError as exc:
            raise SystemExit(f"error: {exc}")
        options["faults"] = plan
        if args.no_hardened:
            options["hardened"] = False
        if args.self_heal:
            if args.no_hardened:
                raise SystemExit(
                    "error: --self-heal needs the hardened protocol; "
                    "drop --no-hardened"
                )
            from repro.detect.stack import FailureDetectorConfig

            fd_options = {}
            if args.gossip_interval is not None:
                fd_options["gossip_interval"] = args.gossip_interval
            if args.gossip_timeout is not None:
                fd_options["gossip_timeout"] = args.gossip_timeout
            try:
                options["failure_detector"] = FailureDetectorConfig(
                    membership=args.membership,
                    gossip_fanout=args.gossip_fanout,
                    **fd_options,
                )
            except ConfigurationError as exc:
                raise SystemExit(f"error: {exc}")
        elif args.membership != "heartbeat":
            raise SystemExit(
                "error: --membership gossip needs --self-heal"
            )
        if not args.json:
            print(f"faults:    {plan.describe()}")
    from repro.common.errors import ReproError

    try:
        report = run_detector(
            args.detector, comp, wcp, verbose=args.verbose, **options
        )
    except ReproError as exc:
        # A detector failure must surface as a distinct nonzero exit —
        # never as a traceback swallowed by a wrapping script.
        print(
            f"error: detector {args.detector!r} failed: {exc}",
            file=sys.stderr,
        )
        if recorder is not None and len(recorder):
            recorder.dump(
                args.flight_recorder,
                detector=args.detector,
                outcome="error",
                error=str(exc),
            )
            print(
                f"flight recorder dumped: {args.flight_recorder}",
                file=sys.stderr,
            )
        return 3
    cut_dict = None
    if report.cut is not None:
        cut_dict = {
            "pids": list(report.cut.pids),
            "intervals": list(report.cut.intervals),
        }
    if tracer is not None:
        from repro.obs import dump_jsonl

        meta = {
            "detector": report.detector,
            "predicate": str(wcp),
            "outcome": report.outcome,
            "cut": cut_dict,
            "detection_time": report.detection_time,
            "seed": args.seed,
        }
        if report.metrics is not None:
            meta["metrics"] = report.metrics.snapshot()
        if report.sim is not None and report.sim.faults is not None:
            meta["faults"] = report.sim.faults.as_dict()
        trace = tracer.finish(
            report.sim.time if report.sim is not None else None, **meta
        )
        dump_jsonl(trace, args.trace_out)
        if not args.json:
            print(f"trace:     {args.trace_out} ({len(trace)} spans)")
    flight_file = None
    if recorder is not None:
        violations = int(report.extras.get("invariant_violations", 0) or 0)
        crashes = 0
        if report.sim is not None and report.sim.faults is not None:
            crashes = report.sim.faults.crashes
        if report.degraded or violations or crashes:
            flight_file = recorder.dump(
                args.flight_recorder,
                detector=report.detector,
                outcome=report.outcome,
                invariant_violations=violations,
                crashes=crashes,
            )
            if not args.json:
                print(f"flight:    {flight_file} ({len(recorder)} events)")
    if args.json:
        import json

        doc = {
            "detector": report.detector,
            "predicate": str(wcp),
            "outcome": report.outcome,
            "detected": report.detected,
            "degraded": report.degraded,
            "cut": cut_dict,
            "detection_time": report.detection_time,
            "extras": dict(report.extras),
        }
        if report.metrics is not None:
            doc["metrics"] = report.metrics.snapshot()
        if report.sim is not None:
            doc["sim_time"] = report.sim.time
            if report.sim.faults is not None:
                doc["faults"] = report.sim.faults.as_dict()
        if args.trace_out is not None:
            doc["trace_file"] = str(args.trace_out)
        if flight_file is not None:
            doc["flight_file"] = str(flight_file)
        print(json.dumps(doc, indent=2, default=str))
    else:
        print(f"detector:  {report.detector}")
        print(f"predicate: {wcp}")
        print(f"detected:  {report.detected}")
        if args.faults is not None:
            print(f"outcome:   {report.outcome}")
        if report.detected:
            print(f"first cut: {report.cut}")
        if report.detection_time is not None:
            print(f"simulated detection time: {report.detection_time:.3f}")
        if report.sim is not None and report.sim.faults is not None:
            f = report.sim.faults
            print(
                f"injected faults: dropped={f.dropped} "
                f"duplicated={f.duplicated} corrupted={f.corrupted} "
                f"lost_to_crash={f.lost_to_crash} "
                f"partitioned={f.partitioned} "
                f"crashes={f.crashes} restarts={f.restarts} "
                f"partitions={f.partitions}"
            )
        for key, value in sorted(report.extras.items()):
            if key in ("invariant_violation_details", "invariant_summary"):
                continue
            print(f"{key}: {value}")
        for detail in report.extras.get("invariant_violation_details", ()):
            print(
                f"  violation: t={detail['time']:g} "
                f"{detail['invariant']} {detail['actor']}: "
                f"{detail['detail']}"
            )
    if report.detected:
        return 0
    return 2 if report.degraded else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.common.errors import ObservabilityError
    from repro.obs import load_jsonl, render_report

    if not args.trace.exists():
        raise SystemExit(f"error: no such trace file: {args.trace}")
    try:
        trace = load_jsonl(args.trace)
    except ObservabilityError as exc:
        raise SystemExit(f"error: {exc}")
    print(render_report(trace, width=args.width))
    return 0


def _cmd_verify_trace(args: argparse.Namespace) -> int:
    from repro.common.errors import ObservabilityError
    from repro.obs import load_jsonl, replay_trace

    if not args.trace.exists():
        raise SystemExit(f"error: no such trace file: {args.trace}")
    try:
        trace = load_jsonl(args.trace)
    except ObservabilityError as exc:
        raise SystemExit(f"error: {exc}")
    options: dict = {"probe_interval": args.probe_interval}
    if args.refutation_window is not None:
        options["refutation_window"] = args.refutation_window
    violations = replay_trace(trace, **options)
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "trace": str(args.trace),
                    "spans": len(trace),
                    "truncated": bool(trace.meta.get("truncated")),
                    "violations": [v.as_dict() for v in violations],
                },
                indent=2,
            )
        )
    else:
        if trace.meta.get("truncated"):
            print("note: trace file was crash-truncated (torn final line)")
        if trace.meta.get("flight_recorder"):
            print(
                "note: flight-recorder dump (windowed; continuity "
                "checks relaxed)"
            )
        for violation in violations:
            print(violation.describe())
        label = "violation" if len(violations) == 1 else "violations"
        print(
            f"{args.trace}: {len(trace)} spans, "
            f"{len(violations)} invariant {label}"
        )
    return 1 if violations else 0


def _cmd_stats(args: argparse.Namespace) -> int:
    comp = _load_trace(args.trace)
    wcp = None
    if args.pids is not None:
        pids = _parse_pids(args.pids, comp.num_processes)
        wcp = WeakConjunctivePredicate.of_flags(pids, var=args.var)
    stats = compute_stats(comp, wcp)
    print(render_table(["statistic", "value"],
                       [[k, str(v)] for k, v in stats.as_rows()]))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    import repro.analysis as analysis

    if args.only is None:
        names = list(_EXPERIMENTS)
    else:
        names = [x.strip().lower() for x in args.only.split(",") if x.strip()]
        unknown = [x for x in names if x not in _EXPERIMENTS]
        if unknown:
            raise SystemExit(
                f"error: unknown experiments {unknown}; "
                f"choose from {sorted(_EXPERIMENTS)}"
            )
    for name in names:
        fn_name, kwargs = _EXPERIMENTS[name]
        result = getattr(analysis, fn_name)(**kwargs)
        print(render_table(result.headers, result.rows, result.experiment))
        for key, fit in result.fits.items():
            print(f"fit[{key}]: {fit}")
        for note in result.notes:
            print(f"note: {note}")
        print()
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    from repro.trace import render_spacetime

    comp = _load_trace(args.trace)
    wcp = None
    cut = None
    if args.pids is not None or args.cut:
        pids = _parse_pids(args.pids, comp.num_processes)
        wcp = WeakConjunctivePredicate.of_flags(pids, var=args.var)
    if args.cut:
        from repro.detect.runner import run_detector

        assert wcp is not None
        report = run_detector("reference", comp, wcp)
        if report.detected:
            cut = report.cut
        else:
            print("(predicate never holds; no cut to draw)")
    print(render_spacetime(comp, wcp, cut))
    return 0


def _cmd_definitely(args: argparse.Namespace) -> int:
    from repro.detect.strong import detect_definitely

    comp = _load_trace(args.trace)
    pids = _parse_pids(args.pids, comp.num_processes)
    wcp = WeakConjunctivePredicate.of_flags(pids, var=args.var)
    report = detect_definitely(comp, wcp)
    print(f"predicate:  {wcp}")
    print(f"definitely: {report.holds}")
    if report.holds:
        print(f"unavoidable box (local-state ranges): {report.box}")
    elif report.reason:
        print(f"reason: {report.reason}")
    print(f"comparisons: {report.comparisons}")
    return 0 if report.holds else 1


def _cmd_import_log(args: argparse.Namespace) -> int:
    from repro.common.errors import SerializationError
    from repro.trace.import_log import parse_log

    if not args.log.exists():
        raise SystemExit(f"error: no such log file: {args.log}")
    try:
        comp = parse_log(
            args.log.read_text(encoding="utf-8"),
            allow_unreceived=args.allow_unreceived,
        )
    except SerializationError as exc:
        raise SystemExit(f"error: {exc}")
    text = dumps(comp, indent=2)
    if args.out is None:
        print(text)
    else:
        args.out.write_text(text + "\n", encoding="utf-8")
        print(f"wrote {args.out} (N={comp.num_processes}, "
              f"events={comp.total_events()})")
    return 0


def _float_or_none(text: str) -> float | None:
    """Axis value cast: ``none`` selects the config default."""
    if text.lower() == "none":
        return None
    return float(text)


def _parse_axis(text: str, name: str, convert):
    """Parse a comma-separated axis; int axes accept ``a..b`` ranges."""
    values: list = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if convert is int and ".." in part:
            lo_text, _, hi_text = part.partition("..")
            try:
                lo, hi = int(lo_text), int(hi_text)
            except ValueError:
                raise SystemExit(f"error: bad range in --{name}: {part!r}")
            if hi < lo:
                raise SystemExit(f"error: empty range in --{name}: {part!r}")
            values.extend(range(lo, hi + 1))
            continue
        try:
            values.append(convert(part))
        except ValueError:
            raise SystemExit(f"error: bad value in --{name}: {part!r}")
    if not values:
        raise SystemExit(f"error: --{name} must name at least one value")
    return tuple(values)


def _sweep_matrix_from_args(args: argparse.Namespace):
    from repro.common.errors import ConfigurationError
    from repro.sweep import SweepMatrix, load_matrix

    try:
        if args.matrix is not None:
            return load_matrix(args.matrix)
        faults: tuple[str | None, ...] = (None,)
        if args.faults:
            faults = tuple(
                None if spec.strip().lower() == "none" else spec
                for spec in args.faults
            )
        return SweepMatrix(
            name=args.name,
            detectors=_parse_axis(args.detectors, "detectors", str),
            processes=_parse_axis(args.processes, "processes", int),
            sends=_parse_axis(args.sends, "sends", int),
            patterns=_parse_axis(args.patterns, "patterns", str),
            densities=_parse_axis(args.densities, "densities", float),
            seeds=_parse_axis(args.seeds, "seeds", int),
            faults=faults,
            plant_final_cut=args.plant_final_cut,
            self_heal=args.self_heal,
            membership=_parse_axis(args.membership, "membership", str),
            gossip_fanouts=_parse_axis(
                args.gossip_fanouts, "gossip-fanouts", int
            ),
            gossip_intervals=_parse_axis(
                args.gossip_intervals, "gossip-intervals", _float_or_none
            ),
            gossip_timeouts=_parse_axis(
                args.gossip_timeouts, "gossip-timeouts", _float_or_none
            ),
            clock_backends=_parse_axis(
                args.clock_backends, "clock-backends", str
            ),
            n_predicates=_parse_axis(
                args.n_predicates, "n-predicates", int
            ),
        )
    except ConfigurationError as exc:
        raise SystemExit(f"error: {exc}")


def _cache_root(args: argparse.Namespace) -> pathlib.Path:
    from repro.sweep import default_cache_root

    return args.cache_dir if args.cache_dir is not None else default_cache_root()


def _run_sweep_or_exit(matrix, cache_root, workers: int, **extra):
    """Run a sweep; report worker failures and return (result, exit_code)."""
    from repro.sweep import run_sweep

    result = run_sweep(matrix, cache_root, workers=workers, **extra)
    for error in result.errors:
        print(
            f"error: sweep cell {error['id']} failed: {error['error']}",
            file=sys.stderr,
        )
    return result, (0 if result.ok else 3)


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    if args.workers < 1:
        raise SystemExit("error: --workers must be >= 1")
    if args.trace_sample < 0:
        raise SystemExit("error: --trace-sample must be >= 0")
    matrix = _sweep_matrix_from_args(args)
    if args.check_invariants:
        import dataclasses

        matrix = dataclasses.replace(matrix, check_invariants=True)
    trace_dir = args.trace_dir
    if args.trace_sample > 0 and trace_dir is None:
        trace_dir = pathlib.Path("sweep-traces")
    result, code = _run_sweep_or_exit(
        matrix,
        _cache_root(args),
        args.workers,
        trace_dir=trace_dir,
        trace_sample=args.trace_sample,
        flight_dir=args.flight_dir,
    )
    traced = [r for r in result.records if "trace_file" in r]
    if traced and not args.quiet:
        print(f"recorded {len(traced)} cell traces under {trace_dir}")
    dumped = [r for r in result.records if "flight_file" in r]
    if dumped:
        for record in dumped:
            print(
                f"flight dump: {record['flight_file']}",
                file=sys.stderr,
            )
    if not args.quiet:
        print(render_table(result.headers, result.rows, result.experiment))
        for note in result.notes:
            print(f"note: {note}")
    if args.out is not None:
        args.out.write_text(
            json.dumps(result.aggregate(), indent=2, default=str) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.out} ({len(result.records)} cells)")
    return code


def _cmd_bench_check(args: argparse.Namespace) -> int:
    import json

    from repro.common.errors import ConfigurationError, ObservabilityError
    from repro.sweep import SweepMatrix, compare, load_baseline
    from repro.sweep.baseline import (
        DEFAULT_WALL_TOLERANCE,
        dump_comparisons_markdown,
    )

    tolerance = (
        args.wall_tolerance
        if args.wall_tolerance is not None
        else DEFAULT_WALL_TOLERANCE
    )
    cache_root = _cache_root(args)
    comparisons = []
    worker_failure = False
    for path in args.baselines:
        try:
            baseline_doc = load_baseline(path)
            matrix = SweepMatrix.from_dict(baseline_doc["params"])
        except (ConfigurationError, ObservabilityError) as exc:
            raise SystemExit(f"error: {exc}")
        result, code = _run_sweep_or_exit(matrix, cache_root, args.workers)
        if code != 0:
            worker_failure = True
            continue
        fresh_doc = result.aggregate()
        if args.update:
            path.write_text(
                json.dumps(fresh_doc, indent=2, default=str) + "\n",
                encoding="utf-8",
            )
            print(f"re-baselined {path} ({len(result.records)} cells)")
            continue
        try:
            comparison = compare(
                baseline_doc, fresh_doc, wall_tolerance=tolerance,
                name=str(path),
            )
        except ConfigurationError as exc:
            raise SystemExit(f"error: {exc}")
        comparisons.append(comparison)
        print(comparison.render())
    if args.summary_out is not None and comparisons:
        dump_comparisons_markdown(comparisons, args.summary_out)
    if worker_failure:
        return 3
    if any(not comparison.ok for comparison in comparisons):
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "detect": _cmd_detect,
        "service": _cmd_service,
        "stats": _cmd_stats,
        "experiments": _cmd_experiments,
        "show": _cmd_show,
        "definitely": _cmd_definitely,
        "report": _cmd_report,
        "verify-trace": _cmd_verify_trace,
        "import-log": _cmd_import_log,
        "sweep": _cmd_sweep,
        "bench-check": _cmd_bench_check,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
