"""Wiring live applications to online detectors in one simulation.

This is the paper's Fig. 1 deployed end to end: application processes
(:mod:`repro.apps.base`) exchange application messages and stream local
snapshots while monitor processes run a detection protocol concurrently
— nothing is precomputed from a trace.

``run_live_token_vc`` attaches §3 monitors (one per predicate process);
``run_live_direct_dep`` attaches §4 monitors (one per process — pass
application processes for *all* pids, built in dd mode with a predicate
on every process, constant-true where none is wanted).
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import ConfigurationError
from repro.detect.base import (
    TOKEN_KIND,
    DetectionReport,
    monitor_name,
)
from repro.detect.direct_dep import TOKEN_BITS, build_monitors
from repro.detect.token_vc import TokenVCMonitor, VCToken
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.simulation.actors import Actor
from repro.simulation.kernel import Kernel
from repro.simulation.network import ChannelModel
from repro.trace.cuts import Cut

from repro.apps.base import ApplicationProcess

__all__ = ["app_names", "run_live_token_vc", "run_live_direct_dep"]


def app_names(num_processes: int) -> list[str]:
    """Canonical application actor names, indexed by pid."""
    return [f"app-{pid}" for pid in range(num_processes)]


class _Injector(Actor):
    def __init__(self, dest: str, payload: object, size_bits: int) -> None:
        super().__init__("token-injector")
        self._dest = dest
        self._payload = payload
        self._bits = size_bits

    def run(self):
        yield self.send(self._dest, self._payload, kind=TOKEN_KIND,
                        size_bits=self._bits)


def run_live_token_vc(
    apps: Sequence[ApplicationProcess],
    wcp: WeakConjunctivePredicate,
    *,
    seed: int = 0,
    channel_model: ChannelModel | None = None,
) -> DetectionReport:
    """Run live applications with the §3 detector attached online."""
    _check_apps(apps)
    pids = wcp.pids
    kernel = Kernel(channel_model=channel_model, seed=seed)
    names = [monitor_name(pid) for pid in pids]
    monitors = [TokenVCMonitor(pid, slot, names) for slot, pid in enumerate(pids)]
    for mon in monitors:
        kernel.add_actor(mon)
    for app in apps:
        kernel.add_actor(app)
    token = VCToken.initial(wcp.n)
    kernel.add_actor(_Injector(names[0], token, token.size_bits()))
    sim = kernel.run()
    winner = next((m for m in monitors if m.detected), None)
    extras = {
        "aborted": any(m.aborted for m in monitors),
        "snapshots": sum(a.snapshots_emitted for a in apps),
    }
    if winner is not None:
        assert winner.detected_cut is not None
        return DetectionReport(
            detector="token_vc",
            detected=True,
            cut=Cut(pids, winner.detected_cut),
            detection_time=winner.detected_at,
            sim=sim,
            metrics=kernel.metrics,
            extras=extras,
        )
    return DetectionReport(
        detector="token_vc", detected=False, sim=sim,
        metrics=kernel.metrics, extras=extras,
    )


def run_live_direct_dep(
    apps: Sequence[ApplicationProcess],
    wcp: WeakConjunctivePredicate,
    *,
    seed: int = 0,
    channel_model: ChannelModel | None = None,
) -> DetectionReport:
    """Run live applications with the §4 detector attached online.

    ``apps`` must cover every process (built in ``dd`` mode with a
    predicate — constant-true for processes outside the WCP).
    """
    _check_apps(apps)
    big_n = len(apps)
    wcp.check_against(big_n)
    kernel = Kernel(channel_model=channel_model, seed=seed)
    monitors = build_monitors(big_n)
    for mon in monitors:
        kernel.add_actor(mon)
    for app in apps:
        kernel.add_actor(app)
    kernel.add_actor(_Injector(monitor_name(0), None, TOKEN_BITS))
    sim = kernel.run()
    winner = next((m for m in monitors if m.detected), None)
    extras = {
        "aborted": any(m.aborted for m in monitors),
        "snapshots": sum(a.snapshots_emitted for a in apps),
    }
    if winner is not None:
        full = Cut(tuple(range(big_n)), tuple(m.G for m in monitors))
        return DetectionReport(
            detector="direct_dep",
            detected=True,
            cut=full.project(wcp.pids),
            full_cut=full,
            detection_time=winner.detected_at,
            sim=sim,
            metrics=kernel.metrics,
            extras=extras,
        )
    return DetectionReport(
        detector="direct_dep", detected=False, sim=sim,
        metrics=kernel.metrics, extras=extras,
    )


def _check_apps(apps: Sequence[ApplicationProcess]) -> None:
    if not apps:
        raise ConfigurationError("need at least one application process")
    pids = sorted(app.pid for app in apps)
    if pids != list(range(len(apps))):
        raise ConfigurationError(f"application pids must be 0..N-1, got {pids}")
