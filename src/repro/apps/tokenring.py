"""Quiescence detection on a worker ring — a classic WCP use case.

A WCP with the clause "worker is idle" on every worker detects *global
quiescence*: a consistent cut where no worker is busy.  (Messages in
flight are invisible to a pure WCP; combine with the GCP channel
predicates of :mod:`repro.detect.gcp` for full termination detection.)

The application: ``k`` workers in a ring.  Worker 0 injects jobs, each
with a hop budget ``ttl <= k``; a worker that receives a live job goes
busy, works for a fixed duration, forwards the job with ``ttl - 1`` (if
still positive), and goes idle.  After injecting, worker 0 circulates a
shutdown marker twice around the ring; with FIFO channels and
``ttl <= k`` every job is dead by the time the second pass completes,
so all workers terminate cleanly.
"""

from __future__ import annotations

from repro.apps.base import ApplicationProcess
from repro.apps.live import app_names
from repro.common.errors import ConfigurationError
from repro.common.types import Pid
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.predicates.local import LocalPredicate, var_true

__all__ = ["RingWorkerApp", "build_ring_system", "quiescence_wcp"]


class RingWorkerApp(ApplicationProcess):
    """One ring worker; worker 0 additionally injects jobs and the marker."""

    def __init__(
        self,
        pid: Pid,
        names: list[str],
        jobs: list[int] | None = None,
        work_duration: float = 1.0,
        monitor: str | None = None,
        mode: str = "vc",
        snapshot_pids=(),
        predicate: LocalPredicate | None = None,
    ) -> None:
        super().__init__(
            pid,
            names,
            predicate=predicate,
            monitor=monitor,
            snapshot_pids=snapshot_pids,
            mode=mode,
            # Worker 0 starts busy (it is about to inject work), so the
            # first quiescent cut is a real post-injection one rather
            # than the trivial initial state.
            initial_vars={"idle": pid != 0},
        )
        self._ring_size = len(names)
        if jobs is not None and pid != 0:
            raise ConfigurationError("only worker 0 injects jobs")
        if jobs is not None and any(t < 1 or t > self._ring_size for t in jobs):
            raise ConfigurationError("job ttl must be in 1..ring size")
        self._jobs = list(jobs or [])
        self._work = work_duration

    def _next(self) -> Pid:
        return (self.pid + 1) % self._ring_size

    def behavior(self):
        if self.pid == 0:
            for ttl in self._jobs:
                yield self.app_send(self._next(), ("job", ttl))
            yield self.app_send(self._next(), ("marker", 1))
            yield self.set_vars(idle=True)
        markers_seen = 0
        while markers_seen < 2:
            msg = yield from self.recv_app()
            kind, value = msg.payload
            if kind == "marker":
                markers_seen += 1
                passes = value
                if self.pid == 0:
                    if passes == 1:
                        yield self.app_send(self._next(), ("marker", 2))
                else:
                    yield self.app_send(self._next(), ("marker", passes))
                continue
            ttl = value
            yield self.set_vars(idle=False)
            yield self.sleep(self._work)
            if ttl > 1:
                yield self.app_send(self._next(), ("job", ttl - 1))
            yield self.set_vars(idle=True)
        if self.pid == 0:
            # Wait for the second marker's full circuit to come home.
            return


def quiescence_wcp(num_workers: int) -> WeakConjunctivePredicate:
    """All workers idle — global quiescence."""
    return WeakConjunctivePredicate(
        {pid: var_true("idle") for pid in range(num_workers)}
    )


def build_ring_system(
    num_workers: int,
    jobs: list[int],
    wcp: WeakConjunctivePredicate,
    mode: str = "vc",
    work_duration: float = 1.0,
) -> list[ApplicationProcess]:
    """The ring wired for live detection (see :mod:`repro.apps.live`)."""
    if num_workers < 2:
        raise ConfigurationError("ring needs >= 2 workers")
    names = app_names(num_workers)
    pred_map = wcp.predicate_map()

    def wiring(pid: Pid) -> dict:
        if pid in pred_map:
            return {
                "predicate": pred_map[pid],
                "monitor": f"mon-{pid}",
                "snapshot_pids": wcp.pids,
                "mode": mode,
            }
        return {"predicate": None, "monitor": None, "mode": mode}

    return [
        RingWorkerApp(
            pid,
            names,
            jobs=jobs if pid == 0 else None,
            work_duration=work_duration,
            **wiring(pid),
        )
        for pid in range(num_workers)
    ]
