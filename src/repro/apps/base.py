"""Live application processes implementing Fig. 2 / §4.1 online.

Unlike trace replay (where snapshots are precomputed), an
:class:`ApplicationProcess` is a real simulated program: it exchanges
application messages with peers, maintains its logical clocks *online*,
evaluates its local predicate after every state change, and streams
local snapshots to its monitor exactly as the paper's application-side
algorithms prescribe:

* **vc mode** (Fig. 2): a vector clock ticked after every send/receive;
  ``firstflag`` is set by every communication event and cleared by the
  first predicate-true state, so at most one snapshot per interval.
* **dd mode** (§4.1): a scalar interval counter tagging every message,
  a dependence list recording each receive, flushed into each snapshot.

Application messages carry both tags, so the same program runs under
either detector family; a deployment would strip the unused tag.

Subclasses implement :meth:`behavior` using the provided ``app_send`` /
``recv_app`` / ``set_vars`` helpers; the base class emits the
end-of-trace marker when the behaviour generator finishes.
"""

from __future__ import annotations

from typing import Generator, Mapping, Sequence

from repro.clocks.dependence import Dependence
from repro.common.errors import ConfigurationError
from repro.common.types import WORD_BITS, Pid
from repro.predicates.local import LocalPredicate
from repro.simulation.actors import Actor
from repro.simulation.effects import Message
from repro.simulation.replay import CANDIDATE_KIND, END_OF_TRACE_KIND
from repro.trace.snapshots import DDSnapshot

__all__ = ["APP_MSG_KIND", "AppMessage", "ApplicationProcess"]

APP_MSG_KIND = "app"


class AppMessage:
    """An application message: payload plus both clock tags."""

    __slots__ = ("payload", "vclock", "counter", "sender")

    def __init__(
        self,
        payload: object,
        vclock: tuple[int, ...],
        counter: int,
        sender: Pid,
    ) -> None:
        self.payload = payload
        self.vclock = vclock
        self.counter = counter
        self.sender = sender


class ApplicationProcess(Actor):
    """Base class for live application processes.

    Parameters
    ----------
    pid:
        This process's id (0-based).
    app_names:
        Actor name of every application process, indexed by pid.
    predicate:
        This process's local predicate, or ``None`` if it carries none.
        In dd mode a process without a predicate still snapshots every
        interval (§4 requires all processes to participate): pass the
        constant-true predicate in that case; ``None`` simply disables
        snapshotting (vc mode, non-predicate process).
    monitor:
        The mated monitor's actor name, or ``None`` to disable
        snapshotting entirely.
    snapshot_pids:
        The WCP's pids, used to project the vector clock in vc mode.
    mode:
        ``"vc"`` (Fig. 2 snapshots) or ``"dd"`` (§4.1 snapshots).
    initial_vars:
        Initial local variable assignment.
    """

    def __init__(
        self,
        pid: Pid,
        app_names: Sequence[str],
        predicate: LocalPredicate | None = None,
        monitor: str | None = None,
        snapshot_pids: Sequence[Pid] = (),
        mode: str = "vc",
        initial_vars: Mapping[str, object] | None = None,
    ) -> None:
        super().__init__(app_names[pid])
        if mode not in ("vc", "dd"):
            raise ConfigurationError(f"mode must be 'vc' or 'dd', got {mode!r}")
        self._pid = pid
        self._apps = list(app_names)
        self._predicate = predicate
        self._monitor = monitor
        self._snapshot_pids = tuple(snapshot_pids)
        self._mode = mode
        self.vars: dict[str, object] = dict(initial_vars or {})
        # Fig. 2 state.
        self._vclock = [0] * len(app_names)
        self._vclock[pid] = 1
        self._firstflag = True
        # §4.1 state.
        self._counter = 1
        self._deps: list[Dependence] = []
        self.snapshots_emitted = 0

    # ------------------------------------------------------------------
    @property
    def pid(self) -> Pid:
        """This process's id."""
        return self._pid

    @property
    def vclock(self) -> tuple[int, ...]:
        """The current (full-width) vector clock."""
        return tuple(self._vclock)

    @property
    def counter(self) -> int:
        """The current §4.1 interval counter."""
        return self._counter

    # ------------------------------------------------------------------
    def run(self) -> Generator:
        # The initial state may already satisfy the predicate.
        emit = self._maybe_emit()
        if emit is not None:
            yield emit
        yield from self.behavior()
        if self._monitor is not None:
            yield self.send(self._monitor, None, kind=END_OF_TRACE_KIND, size_bits=1)

    def behavior(self) -> Generator:
        """The application program; subclasses must override."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Fig. 2 / §4.1 primitives
    # ------------------------------------------------------------------
    def app_send(self, dest_pid: Pid, payload: object, size_bits: int = WORD_BITS):
        """Send an application message (yield the returned effects).

        Tags the message with the pre-send clocks, then advances them —
        exactly Fig. 2's ordering — and re-arms ``firstflag``.
        """
        if dest_pid == self._pid:
            raise ConfigurationError("a process cannot send to itself")
        message = AppMessage(
            payload, tuple(self._vclock), self._counter, self._pid
        )
        effects = [
            self.send(
                self._apps[dest_pid],
                message,
                kind=APP_MSG_KIND,
                size_bits=size_bits + len(self._apps) * WORD_BITS,
            )
        ]
        self._vclock[self._pid] += 1
        self._counter += 1
        self._firstflag = True
        emit = self._maybe_emit()
        if emit is not None:
            effects.append(emit)
        return effects

    def recv_app(self, timeout: float | None = None) -> Generator:
        """Block for one application message; merge clocks; maybe snapshot.

        Usage: ``msg = yield from self.recv_app()`` — returns the
        :class:`AppMessage`, or ``None`` if ``timeout`` expired first
        (timeouts are local steps: no clock activity, no snapshot).
        """
        if timeout is None:
            raw: Message = yield self.receive(APP_MSG_KIND)
        else:
            raw = yield self.receive_timeout(APP_MSG_KIND, timeout=timeout)
            if raw is None:
                return None
        message: AppMessage = raw.payload
        for k, value in enumerate(message.vclock):
            if value > self._vclock[k]:
                self._vclock[k] = value
        self._vclock[self._pid] += 1
        self._deps.append(Dependence(message.sender, message.counter))
        self._counter += 1
        self._firstflag = True
        emit = self._maybe_emit()
        if emit is not None:
            yield emit
        return message

    def set_vars(self, **updates: object):
        """Update local variables; snapshot if the predicate just became
        observable this interval.  Yield the returned effect list."""
        self.vars.update(updates)
        emit = self._maybe_emit()
        return [emit] if emit is not None else []

    # ------------------------------------------------------------------
    def _maybe_emit(self):
        if self._monitor is None or self._predicate is None:
            return None
        if not self._firstflag or not self._predicate(self.vars):
            return None
        self._firstflag = False
        self.snapshots_emitted += 1
        if self._mode == "vc":
            payload = tuple(self._vclock[p] for p in self._snapshot_pids)
            bits = len(self._snapshot_pids) * WORD_BITS
        else:
            deps = tuple(self._deps)
            self._deps.clear()
            payload = DDSnapshot(
                pid=self._pid,
                clock=self._counter,
                deps=deps,
                state_index=-1,  # not meaningful for live runs
                time=None,
            )
            bits = (1 + 2 * len(deps)) * WORD_BITS
        return self.send(
            self._monitor, payload, kind=CANDIDATE_KIND, size_bits=bits
        )
