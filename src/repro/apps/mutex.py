"""Example 1 from the paper: detecting a mutual-exclusion violation.

    "Let ``CS_i`` represent the local predicate that the process ``P_i``
    is in critical section.  Then, detecting ``CS_1 ∧ CS_2`` is
    equivalent to detecting violation of mutual exclusion for a
    particular run."

We simulate a coordinator-based mutex with an injectable *double-grant*
bug: periodically the coordinator grants a pending request without
waiting for the previous holder's release.  When that happens, two
clients hold the critical section in causally concurrent intervals —
regardless of whether their real-time occupancy overlaps — so the WCP
``cs@A ∧ cs@B`` holds at a consistent cut and every detector in this
library finds it.  With the bug disabled, grants are serialized through
release messages, the CS intervals are causally ordered, and the WCP
never holds: no false alarms.
"""

from __future__ import annotations

from collections import deque

from repro.apps.base import ApplicationProcess
from repro.apps.live import app_names
from repro.common.errors import ConfigurationError
from repro.common.types import Pid
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.predicates.local import LocalPredicate, always_true, var_true

__all__ = ["CoordinatorApp", "MutexClientApp", "build_mutex_system", "mutex_wcp"]

COORDINATOR_PID = 0


class CoordinatorApp(ApplicationProcess):
    """Grants the critical section; optionally double-grants (the bug).

    With ``bug_every = b > 0``, every ``b``-th grant is followed by an
    immediate extra grant to the next waiter even though the holder has
    not released — the classic lost-release race, made deterministic.
    """

    def __init__(
        self,
        names: list[str],
        num_clients: int,
        rounds: int,
        bug_every: int = 0,
        monitor: str | None = None,
        mode: str = "vc",
        snapshot_pids=(),
        predicate: LocalPredicate | None = None,
    ) -> None:
        super().__init__(
            COORDINATOR_PID,
            names,
            predicate=predicate,
            monitor=monitor,
            snapshot_pids=snapshot_pids,
            mode=mode,
            initial_vars={"granted_to": None},
        )
        if num_clients < 2:
            raise ConfigurationError("mutex example needs >= 2 clients")
        if bug_every < 0:
            raise ConfigurationError("bug_every must be >= 0 (0 = correct)")
        self._num_clients = num_clients
        self._rounds = rounds
        self._bug_every = bug_every

    def behavior(self):
        pending: deque[Pid] = deque()
        busy = False
        grants = 0
        expected = 2 * self._num_clients * self._rounds  # requests + releases
        for _ in range(expected):
            msg = yield from self.recv_app()
            kind, client = msg.payload
            if kind == "request":
                pending.append(client)
            else:  # release
                busy = False
                yield self.set_vars(granted_to=None)
            while pending:
                if not busy:
                    target = pending.popleft()
                    grants += 1
                    busy = True
                    yield self.set_vars(granted_to=target)
                    yield self.app_send(target, ("grant", None))
                elif (
                    self._bug_every
                    and pending
                    and grants % self._bug_every == 0
                ):
                    # BUG: impatient re-grant without awaiting release.
                    target = pending.popleft()
                    grants += 1
                    yield self.app_send(target, ("grant", None))
                else:
                    break


class MutexClientApp(ApplicationProcess):
    """Requests the CS ``rounds`` times; sets ``cs`` while inside."""

    def __init__(
        self,
        pid: Pid,
        names: list[str],
        rounds: int,
        cs_duration: float = 2.0,
        monitor: str | None = None,
        mode: str = "vc",
        snapshot_pids=(),
        predicate: LocalPredicate | None = None,
    ) -> None:
        super().__init__(
            pid,
            names,
            predicate=predicate,
            monitor=monitor,
            snapshot_pids=snapshot_pids,
            mode=mode,
            initial_vars={"cs": False},
        )
        self._rounds = rounds
        self._cs_duration = cs_duration

    def behavior(self):
        for _ in range(self._rounds):
            yield self.app_send(COORDINATOR_PID, ("request", self.pid))
            msg = yield from self.recv_app()
            assert msg.payload[0] == "grant"
            yield self.set_vars(cs=True)
            yield self.sleep(self._cs_duration)
            yield self.set_vars(cs=False)
            yield self.app_send(COORDINATOR_PID, ("release", self.pid))


def mutex_wcp(client_a: Pid, client_b: Pid) -> WeakConjunctivePredicate:
    """The paper's example predicate: both clients in the CS."""
    return WeakConjunctivePredicate(
        {client_a: var_true("cs"), client_b: var_true("cs")}
    )


def build_mutex_system(
    num_clients: int,
    rounds: int,
    bug_every: int,
    wcp: WeakConjunctivePredicate,
    mode: str = "vc",
) -> list[ApplicationProcess]:
    """Construct coordinator + clients wired for the given detector mode.

    In vc mode only the WCP's processes snapshot; in dd mode every
    process does (constant-true predicate where the WCP names none).
    """
    total = num_clients + 1
    names = app_names(total)
    pred_map = wcp.predicate_map()

    def wiring(pid: Pid) -> dict:
        if mode == "vc":
            if pid in pred_map:
                return {
                    "predicate": pred_map[pid],
                    "monitor": f"mon-{pid}",
                    "snapshot_pids": wcp.pids,
                    "mode": mode,
                }
            return {"predicate": None, "monitor": None, "mode": mode}
        return {
            "predicate": pred_map.get(pid, always_true()),
            "monitor": f"mon-{pid}",
            "mode": mode,
        }

    apps: list[ApplicationProcess] = [
        CoordinatorApp(
            names, num_clients, rounds, bug_every=bug_every, **wiring(COORDINATOR_PID)
        )
    ]
    for client in range(1, total):
        apps.append(
            MutexClientApp(client, names, rounds, **wiring(client))
        )
    return apps
