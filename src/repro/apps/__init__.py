"""Live application programs with online detection attached."""

from repro.apps.base import APP_MSG_KIND, AppMessage, ApplicationProcess
from repro.apps.leader import BullyNode, build_election_system, split_brain_wcp
from repro.apps.live import app_names, run_live_direct_dep, run_live_token_vc
from repro.apps.mutex import (
    CoordinatorApp,
    MutexClientApp,
    build_mutex_system,
    mutex_wcp,
)
from repro.apps.tokenring import RingWorkerApp, build_ring_system, quiescence_wcp
from repro.apps.twophase import (
    LockManagerApp,
    TransactionApp,
    build_locking_system,
    read_write_conflict_wcp,
)

__all__ = [
    "ApplicationProcess",
    "AppMessage",
    "APP_MSG_KIND",
    "app_names",
    "run_live_token_vc",
    "run_live_direct_dep",
    "CoordinatorApp",
    "MutexClientApp",
    "build_mutex_system",
    "mutex_wcp",
    "LockManagerApp",
    "TransactionApp",
    "build_locking_system",
    "read_write_conflict_wcp",
    "RingWorkerApp",
    "build_ring_system",
    "quiescence_wcp",
    "BullyNode",
    "build_election_system",
    "split_brain_wcp",
]
