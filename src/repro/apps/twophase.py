"""Example 2 from the paper: read/write-lock conflicts under 2PL.

    "Assume that in a database application, serializability is enforced
    using a two phase locking scheme ... detecting
    ``(P_1 has read lock) ∧ (P_2 has write lock)`` is useful in
    identifying an error in implementation."

We simulate a lock manager and transaction clients.  Clients run
two-phase transactions: acquire all locks (growing phase), do work,
release all (shrinking phase).  The manager's injectable bug is the
classic *upgrade race*: with ``allow_write_with_readers=True`` it grants
a write lock on an item that currently has readers.  The resulting
reader/writer intervals are causally concurrent, so the paper's example
WCP holds at a consistent cut exactly when the bug fires.
"""

from __future__ import annotations

from collections import deque

from repro.apps.base import ApplicationProcess
from repro.apps.live import app_names
from repro.common.errors import ConfigurationError
from repro.common.types import Pid
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.predicates.local import LocalPredicate, always_true, var_true

__all__ = [
    "LockManagerApp",
    "TransactionApp",
    "build_locking_system",
    "read_write_conflict_wcp",
]

MANAGER_PID = 0


class LockManagerApp(ApplicationProcess):
    """Grants read/write locks per item; optionally with the upgrade bug."""

    def __init__(
        self,
        names: list[str],
        expected_requests: int,
        allow_write_with_readers: bool = False,
        monitor: str | None = None,
        mode: str = "vc",
        snapshot_pids=(),
        predicate: LocalPredicate | None = None,
    ) -> None:
        super().__init__(
            MANAGER_PID,
            names,
            predicate=predicate,
            monitor=monitor,
            snapshot_pids=snapshot_pids,
            mode=mode,
        )
        self._expected = expected_requests
        self._buggy = allow_write_with_readers

    def behavior(self):
        readers: dict[str, set[Pid]] = {}
        writer: dict[str, Pid | None] = {}
        waiting: dict[str, deque[tuple[Pid, str]]] = {}
        handled = 0
        while handled < self._expected:
            msg = yield from self.recv_app()
            handled += 1
            op, client, item = msg.payload
            readers.setdefault(item, set())
            writer.setdefault(item, None)
            waiting.setdefault(item, deque())
            if op == "unlock":
                readers[item].discard(client)
                if writer[item] == client:
                    writer[item] = None
            else:
                waiting[item].append((client, op))
            # Grant whatever is now grantable, FIFO per item.
            queue = waiting[item]
            while queue:
                client2, op2 = queue[0]
                if op2 == "read":
                    if writer[item] is None:
                        queue.popleft()
                        readers[item].add(client2)
                        yield self.app_send(client2, ("granted", op2, item))
                        continue
                else:  # write
                    no_writer = writer[item] is None
                    no_readers = not readers[item]
                    if no_writer and (no_readers or self._buggy):
                        # BUG (when readers present): write granted while
                        # read locks are outstanding.
                        queue.popleft()
                        writer[item] = client2
                        yield self.app_send(client2, ("granted", op2, item))
                        continue
                break


class TransactionApp(ApplicationProcess):
    """Runs scripted two-phase transactions.

    ``script`` is a list of transactions; each transaction is a list of
    ``(op, item)`` lock requests (``op`` in {"read", "write"}) acquired
    in order, held for ``hold_duration``, then released in reverse.
    The local state exposes ``read_<item>`` / ``write_<item>`` flags.
    """

    def __init__(
        self,
        pid: Pid,
        names: list[str],
        script: list[list[tuple[str, str]]],
        hold_duration: float = 2.0,
        monitor: str | None = None,
        mode: str = "vc",
        snapshot_pids=(),
        predicate: LocalPredicate | None = None,
    ) -> None:
        super().__init__(
            pid,
            names,
            predicate=predicate,
            monitor=monitor,
            snapshot_pids=snapshot_pids,
            mode=mode,
        )
        for txn in script:
            for op, _item in txn:
                if op not in ("read", "write"):
                    raise ConfigurationError(f"unknown lock op {op!r}")
        self._script = script
        self._hold = hold_duration

    def request_count(self) -> int:
        """Messages this client will send to the manager."""
        return sum(2 * len(txn) for txn in self._script)

    def behavior(self):
        for txn in self._script:
            for op, item in txn:  # growing phase
                yield self.app_send(MANAGER_PID, (op, self.pid, item))
                msg = yield from self.recv_app()
                assert msg.payload[0] == "granted"
                yield self.set_vars(**{f"{op}_{item}": True})
            yield self.sleep(self._hold)
            for op, item in reversed(txn):  # shrinking phase
                yield self.set_vars(**{f"{op}_{item}": False})
                yield self.app_send(MANAGER_PID, ("unlock", self.pid, item))


def read_write_conflict_wcp(
    reader: Pid, writer: Pid, item: str = "x"
) -> WeakConjunctivePredicate:
    """The paper's predicate: ``reader`` holds a read lock while
    ``writer`` holds a write lock on the same item."""
    return WeakConjunctivePredicate(
        {reader: var_true(f"read_{item}"), writer: var_true(f"write_{item}")}
    )


def build_locking_system(
    scripts: dict[Pid, list[list[tuple[str, str]]]],
    wcp: WeakConjunctivePredicate,
    allow_write_with_readers: bool,
    mode: str = "vc",
    hold_duration: float = 2.0,
) -> list[ApplicationProcess]:
    """Manager (pid 0) plus one transaction client per script entry.

    ``scripts`` keys must be 1..k.
    """
    client_pids = sorted(scripts)
    if client_pids != list(range(1, len(client_pids) + 1)):
        raise ConfigurationError("script pids must be 1..k")
    total = len(client_pids) + 1
    names = app_names(total)
    pred_map = wcp.predicate_map()

    def wiring(pid: Pid) -> dict:
        if mode == "vc":
            if pid in pred_map:
                return {
                    "predicate": pred_map[pid],
                    "monitor": f"mon-{pid}",
                    "snapshot_pids": wcp.pids,
                    "mode": mode,
                }
            return {"predicate": None, "monitor": None, "mode": mode}
        return {
            "predicate": pred_map.get(pid, always_true()),
            "monitor": f"mon-{pid}",
            "mode": mode,
        }

    clients = [
        TransactionApp(
            pid, names, scripts[pid], hold_duration=hold_duration, **wiring(pid)
        )
        for pid in client_pids
    ]
    expected = sum(c.request_count() for c in clients)
    manager = LockManagerApp(
        names,
        expected_requests=expected,
        allow_write_with_readers=allow_write_with_readers,
        **wiring(MANAGER_PID),
    )
    return [manager] + clients
