"""Split-brain detection in a bully-style leader election.

A further classic WCP use case: ``leader@P_i ∧ leader@P_j`` detects two
processes considering themselves leader in causally concurrent states —
the split-brain condition.

The protocol is a simplified bully election.  Node 0 starts an election
by messaging every higher-id node; a node that receives an ELECTION
answers ALIVE and campaigns itself (once); the highest node declares
itself leader and broadcasts VICTORY.  A campaigning node waits
``alive_timeout`` for an ALIVE from any higher node; the *bug* is an
impatient timeout shorter than the message round trip — the campaigner
concludes all higher nodes are dead and declares itself leader, even
though the true leader also declares.  The two leader intervals are
causally concurrent (neither declaration is in the other's past), so the
WCP holds at a consistent cut even though a later VICTORY resolves the
conflict in real time — exactly the class of transient bug predicate
detection exists to catch.
"""

from __future__ import annotations

from repro.apps.base import ApplicationProcess
from repro.apps.live import app_names
from repro.common.errors import ConfigurationError
from repro.common.types import Pid
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.predicates.local import LocalPredicate, var_true

__all__ = ["BullyNode", "build_election_system", "split_brain_wcp"]


class BullyNode(ApplicationProcess):
    """One election participant.

    ``alive_timeout`` is the campaign patience; with unit channel
    latency the honest round trip is ~2 time units, so values below that
    inject the split-brain bug.
    """

    def __init__(
        self,
        pid: Pid,
        names: list[str],
        alive_timeout: float,
        monitor: str | None = None,
        mode: str = "vc",
        snapshot_pids=(),
        predicate: LocalPredicate | None = None,
    ) -> None:
        super().__init__(
            pid,
            names,
            predicate=predicate,
            monitor=monitor,
            snapshot_pids=snapshot_pids,
            mode=mode,
            initial_vars={"leader": False},
        )
        if alive_timeout <= 0:
            raise ConfigurationError("alive_timeout must be > 0")
        self._timeout = alive_timeout
        self._campaigned = False
        self._got_top_victory = False

    # ------------------------------------------------------------------
    @property
    def _top(self) -> Pid:
        return len(self._apps) - 1

    def _higher(self) -> list[Pid]:
        return list(range(self.pid + 1, len(self._apps)))

    def behavior(self):
        if self.pid == 0:
            yield from self._campaign()
        while not self._got_top_victory:
            msg = yield from self.recv_app()
            yield from self._dispatch(msg)

    # ------------------------------------------------------------------
    def _dispatch(self, msg):
        kind, sender = msg.payload
        if kind == "election":
            yield self.app_send(sender, ("alive", self.pid))
            if not self._campaigned:
                yield from self._campaign()
        elif kind == "victory":
            yield from self._handle_victory(sender)
        # stray "alive" outside a campaign window: ignore.

    def _handle_victory(self, winner: Pid):
        if winner != self.pid and winner > self.pid:
            # A higher leader exists: stand down.
            yield self.set_vars(leader=False)
        if winner == self._top:
            self._got_top_victory = True

    def _campaign(self):
        self._campaigned = True
        if self.pid == self._top:
            yield from self._declare()
            return
        for higher in self._higher():
            yield self.app_send(higher, ("election", self.pid))
        deadline = self.now + self._timeout
        while True:
            remaining = deadline - self.now
            if remaining <= 0:
                # BUG (when the timeout is impatient): nobody answered in
                # time, so this node crowns itself.
                yield from self._declare()
                return
            msg = yield from self.recv_app(timeout=remaining)
            if msg is None:
                yield from self._declare()
                return
            kind, sender = msg.payload
            if kind == "alive":
                return  # a higher node lives; await its victory
            yield from self._dispatch(msg)
            if kind == "victory" and sender > self.pid:
                return  # a higher leader exists: stand down immediately

    def _declare(self):
        yield self.set_vars(leader=True)
        for other in range(len(self._apps)):
            if other != self.pid:
                yield self.app_send(other, ("victory", self.pid))
        if self.pid == self._top:
            self._got_top_victory = True


def split_brain_wcp(node_a: Pid, node_b: Pid) -> WeakConjunctivePredicate:
    """Both nodes believe they are leader."""
    return WeakConjunctivePredicate(
        {node_a: var_true("leader"), node_b: var_true("leader")}
    )


def build_election_system(
    num_nodes: int,
    alive_timeout: float,
    wcp: WeakConjunctivePredicate,
    mode: str = "vc",
) -> list[ApplicationProcess]:
    """All election nodes wired for live detection."""
    if num_nodes < 2:
        raise ConfigurationError("election needs >= 2 nodes")
    names = app_names(num_nodes)
    pred_map = wcp.predicate_map()

    def wiring(pid: Pid) -> dict:
        if mode == "vc":
            if pid in pred_map:
                return {
                    "predicate": pred_map[pid],
                    "monitor": f"mon-{pid}",
                    "snapshot_pids": wcp.pids,
                    "mode": mode,
                }
            return {"predicate": None, "monitor": None, "mode": mode}
        from repro.predicates.local import always_true

        return {
            "predicate": pred_map.get(pid, always_true()),
            "monitor": f"mon-{pid}",
            "mode": mode,
        }

    return [
        BullyNode(pid, names, alive_timeout, **wiring(pid))
        for pid in range(num_nodes)
    ]
