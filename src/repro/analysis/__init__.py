"""Measurement and reporting: sweeps, power-law fits, tables."""

from repro.analysis.complexity import (
    BivariateFit,
    PowerLawFit,
    fit_bivariate,
    fit_power_law,
)
from repro.analysis.experiments import (
    ExperimentResult,
    run_e1_token_vc,
    run_e2_direct_dep,
    run_e3_crossover,
    run_e4_multi_token,
    run_e5_parallel_dd,
    run_e6_lower_bound,
    run_e7_vs_centralized,
    run_e8_agreement,
    run_e9_routing_ablation,
    run_e10_average_case,
    run_e11_detection_latency,
    run_e12_strong_predicates,
    run_e13_gcp_online,
    run_e14_fault_overhead,
    strip_times,
)
from repro.analysis.tables import format_value, render_table

__all__ = [
    "PowerLawFit",
    "BivariateFit",
    "fit_power_law",
    "fit_bivariate",
    "ExperimentResult",
    "strip_times",
    "run_e1_token_vc",
    "run_e2_direct_dep",
    "run_e3_crossover",
    "run_e4_multi_token",
    "run_e5_parallel_dd",
    "run_e6_lower_bound",
    "run_e7_vs_centralized",
    "run_e8_agreement",
    "run_e9_routing_ablation",
    "run_e10_average_case",
    "run_e11_detection_latency",
    "run_e12_strong_predicates",
    "run_e13_gcp_online",
    "run_e14_fault_overhead",
    "render_table",
    "format_value",
]
