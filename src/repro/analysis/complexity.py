"""Empirical complexity fitting.

The paper's evaluation is a set of asymptotic claims; to "reproduce"
them we measure cost over parameter sweeps and fit power laws.  For a
claim like *total work = O(n^2 m)* we fit

    log y  =  a·log n + b·log m + c

and check the recovered exponents ``(a, b)`` against the claim's
``(2, 1)``.  Fitting uses ordinary least squares via numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["PowerLawFit", "fit_power_law", "BivariateFit", "fit_bivariate"]


@dataclass(frozen=True, slots=True)
class PowerLawFit:
    """``y ≈ exp(intercept) * x^exponent`` with goodness of fit."""

    exponent: float
    intercept: float
    r_squared: float


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of ``log y = exponent * log x + intercept``.

    Requires at least two distinct positive x values and positive y.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape or x.size < 2:
        raise ValueError("need matching arrays with at least two points")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fitting requires positive data")
    lx, ly = np.log(x), np.log(y)
    design = np.column_stack([lx, np.ones_like(lx)])
    coef, *_ = np.linalg.lstsq(design, ly, rcond=None)
    predicted = design @ coef
    ss_res = float(np.sum((ly - predicted) ** 2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(exponent=float(coef[0]), intercept=float(coef[1]), r_squared=r2)


@dataclass(frozen=True, slots=True)
class BivariateFit:
    """``y ≈ exp(intercept) * n^n_exponent * m^m_exponent``."""

    n_exponent: float
    m_exponent: float
    intercept: float
    r_squared: float


def fit_bivariate(
    ns: Sequence[float], ms: Sequence[float], ys: Sequence[float]
) -> BivariateFit:
    """Fit ``log y = a·log n + b·log m + c`` by least squares.

    The sweep must vary both n and m (a rank-deficient design raises).
    """
    n = np.asarray(ns, dtype=float)
    m = np.asarray(ms, dtype=float)
    y = np.asarray(ys, dtype=float)
    if not (n.shape == m.shape == y.shape) or n.size < 3:
        raise ValueError("need three matching arrays with at least three points")
    if np.any(n <= 0) or np.any(m <= 0) or np.any(y <= 0):
        raise ValueError("power-law fitting requires positive data")
    design = np.column_stack([np.log(n), np.log(m), np.ones(n.size)])
    if np.linalg.matrix_rank(design) < 3:
        raise ValueError("sweep must vary both n and m independently")
    ly = np.log(y)
    coef, *_ = np.linalg.lstsq(design, ly, rcond=None)
    predicted = design @ coef
    ss_res = float(np.sum((ly - predicted) ** 2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return BivariateFit(
        n_exponent=float(coef[0]),
        m_exponent=float(coef[1]),
        intercept=float(coef[2]),
        r_squared=r2,
    )
