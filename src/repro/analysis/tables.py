"""Plain-text table rendering for the benchmark harness.

Benchmarks print the rows the paper's analysis predicts (message counts,
work, space) next to the measured values; this module renders them as
aligned ASCII so the output is readable in CI logs and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "format_value"]


def format_value(value: object) -> str:
    """Human-friendly formatting: floats to 3 significant decimals."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    if isinstance(value, int) and abs(value) >= 10000:
        return f"{value:,}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Numbers are right-aligned, text left-aligned; the result ends
    without a trailing newline.
    """
    str_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str], original: Sequence[object] | None) -> str:
        parts = []
        for i, cell in enumerate(cells):
            right = original is not None and isinstance(
                original[i], (int, float)
            ) and not isinstance(original[i], bool)
            parts.append(cell.rjust(widths[i]) if right else cell.ljust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    sep = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers), None))
    lines.append(sep)
    original_rows = [list(r) for r in rows] if not isinstance(rows, list) else rows
    for raw, rendered in zip(original_rows, str_rows):
        lines.append(fmt_row(rendered, list(raw)))
    return "\n".join(lines)
