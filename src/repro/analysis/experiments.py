"""The experiment harness: one function per DESIGN.md experiment row.

Each ``run_eN`` function generates workloads, runs the relevant
detectors with full instrumentation, and returns an
:class:`ExperimentResult` — headers + rows (ready for
:func:`repro.analysis.tables.render_table`) plus fitted scaling
exponents and pass/fail notes against the paper's bounds.  The
``benchmarks/`` tree wraps these in pytest-benchmark targets and prints
the tables; EXPERIMENTS.md records paper-claim vs measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.analysis.complexity import fit_bivariate, fit_power_law
from repro.detect import runner as detect_runner
from repro.lowerbound import available_strategies, play_against_adversary
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.simulation.network import FixedLatency
from repro.simulation.replay import CANDIDATE_KIND
from repro.trace.computation import Computation
from repro.trace.events import Event, ProcessTrace
from repro.trace.generators import (
    random_computation,
    skewed_concurrent_computation,
    spiral_computation,
    worst_case_computation,
)

__all__ = [
    "ExperimentResult",
    "strip_times",
    "run_e1_token_vc",
    "run_e2_direct_dep",
    "run_e3_crossover",
    "run_e4_multi_token",
    "run_e5_parallel_dd",
    "run_e6_lower_bound",
    "run_e7_vs_centralized",
    "run_e8_agreement",
    "run_e9_routing_ablation",
    "run_e10_average_case",
    "run_e11_detection_latency",
    "run_e12_strong_predicates",
    "run_e13_gcp_online",
    "run_e14_fault_overhead",
]


@dataclass
class ExperimentResult:
    """Rows, fits and notes for one experiment."""

    experiment: str
    headers: list[str]
    rows: list[list[Any]]
    fits: dict[str, Any] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def column(self, name: str) -> list[Any]:
        """Extract one column by header name."""
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]


def strip_times(computation: Computation) -> Computation:
    """A copy of the computation with all event timestamps removed.

    Replay then feeds snapshots back-to-back (one spacing unit apart),
    so the measured makespan is dominated by the detection protocol
    itself rather than by waiting for the application to produce states
    — the regime the concurrency experiments (E4/E5) care about.
    """
    traces = []
    for trace in computation.processes:
        events = tuple(
            Event(e.kind, e.msg_id, e.peer, dict(e.updates), None)
            for e in trace.events
        )
        traces.append(ProcessTrace(events, dict(trace.initial_vars)))
    return Computation(traces)


def _wcp_over(pids: Sequence[int]) -> WeakConjunctivePredicate:
    return WeakConjunctivePredicate.of_flags(tuple(pids))


def _monitor_stats(report) -> dict[str, int | float]:
    board = report.metrics
    return {
        "mon_msgs": board.total_messages("mon-"),
        "mon_bits": board.total_bits("mon-"),
        "total_work": board.total_work("mon-"),
        "max_work": board.max_work_per_actor("mon-"),
        "max_space": board.max_space_per_actor("mon-"),
        "candidates": board.messages_of_kind(CANDIDATE_KIND),
    }


# ----------------------------------------------------------------------
# E1 — §3.4 bounds for the single-token vector-clock algorithm
# ----------------------------------------------------------------------
def run_e1_token_vc(
    ns: Sequence[int] = (4, 8, 16),
    ms: Sequence[int] = (8, 16, 32),
    seed: int = 0,
) -> ExperimentResult:
    """Measure token hops, messages, bits, work and space vs (n, m).

    Paper claims: token sent <= nm times; monitor messages <= 2nm total;
    bits O(n^2 m); work per process O(nm), total O(n^2 m); space per
    process O(nm).
    """
    headers = [
        "n", "m", "token_hops", "hop_bound(nm)", "mon_msgs",
        "msg_bound(2nm)", "mon_bits", "total_work", "max_work",
        "max_space_bits", "detected",
    ]
    rows: list[list[Any]] = []
    for n in ns:
        for m_target in ms:
            comp = spiral_computation(n, rounds=max(1, m_target // 2))
            m = comp.max_messages_per_process()
            report = detect_runner.run_detector(
                "token_vc", comp, _wcp_over(range(n)), seed=seed
            )
            stats = _monitor_stats(report)
            hops = report.extras["token_hops"]
            rows.append([
                n, m, hops, n * (m + 1), stats["mon_msgs"], 2 * n * (m + 1),
                stats["mon_bits"], stats["total_work"], stats["max_work"],
                stats["max_space"], report.detected,
            ])
    result = ExperimentResult("E1 token_vc scaling (§3.4)", headers, rows)
    if len(ns) >= 2 and len(ms) >= 2:
        result.fits["total_work"] = fit_bivariate(
            result.column("n"), result.column("m"), result.column("total_work")
        )
        result.fits["max_work"] = fit_bivariate(
            result.column("n"), result.column("m"), result.column("max_work")
        )
        result.fits["mon_bits"] = fit_bivariate(
            result.column("n"), result.column("m"), result.column("mon_bits")
        )
    hop_ok = all(r[2] <= r[3] for r in rows)
    msg_ok = all(r[4] <= r[5] for r in rows)
    result.notes.append(f"token hops within nm bound: {hop_ok}")
    result.notes.append(f"monitor messages within 2nm bound: {msg_ok}")
    return result


# ----------------------------------------------------------------------
# E2 — §4.4 bounds for the direct-dependence algorithm
# ----------------------------------------------------------------------
def run_e2_direct_dep(
    big_ns: Sequence[int] = (4, 8, 16),
    ms: Sequence[int] = (8, 16, 32),
    seed: int = 0,
) -> ExperimentResult:
    """Measure polls, token hops, bits, work and space vs (N, m).

    Paper claims: at most mN polls and mN token moves (3mN messages
    total counting responses); O(Nm) bits; O(m) work and space on each
    process.
    """
    headers = [
        "N", "m", "polls", "token_hops", "mon_msgs", "msg_bound(3Nm)",
        "mon_bits", "total_work", "max_work", "work_bound_per_proc",
        "max_space_bits", "detected",
    ]
    rows: list[list[Any]] = []
    for big_n in big_ns:
        for m_target in ms:
            comp = spiral_computation(big_n, rounds=max(1, m_target // 2))
            m = comp.max_messages_per_process()
            report = detect_runner.run_detector(
                "direct_dep", comp, _wcp_over(range(big_n)), seed=seed
            )
            stats = _monitor_stats(report)
            rows.append([
                big_n, m, report.extras["polls"], report.extras["token_hops"],
                stats["mon_msgs"], 3 * big_n * (m + 1), stats["mon_bits"],
                stats["total_work"], stats["max_work"], 4 * (m + 1),
                stats["max_space"], report.detected,
            ])
    result = ExperimentResult("E2 direct_dep scaling (§4.4)", headers, rows)
    if len(big_ns) >= 2 and len(ms) >= 2:
        result.fits["total_work"] = fit_bivariate(
            result.column("N"), result.column("m"), result.column("total_work")
        )
        result.fits["mon_bits"] = fit_bivariate(
            result.column("N"), result.column("m"), result.column("mon_bits")
        )
        # Per-process work should be O(m): fit against m alone.
        result.fits["max_work_vs_m"] = fit_power_law(
            result.column("m"), result.column("max_work")
        )
    msg_ok = all(r[4] <= r[5] for r in rows)
    result.notes.append(f"monitor messages within 3Nm bound: {msg_ok}")
    return result


# ----------------------------------------------------------------------
# E3 — crossover between the two algorithms as n grows relative to N
# ----------------------------------------------------------------------
def run_e3_crossover(
    big_n: int = 24,
    m: int = 12,
    n_values: Sequence[int] = (2, 4, 8, 16, 24),
    seed: int = 0,
) -> ExperimentResult:
    """Fix N and m; sweep the predicate width n.

    The paper (§1, §6): the vector-clock algorithm costs O(n^2 m) while
    the direct-dependence algorithm costs O(Nm), so direct dependence
    wins once n^2 is large relative to N.  We compare total monitor
    bits and work and report the winner per row.
    """
    headers = [
        "N", "n", "m", "vc_bits", "dd_bits", "vc_work", "dd_work",
        "bits_winner", "work_winner",
    ]
    rows: list[list[Any]] = []
    for n in n_values:
        pred_pids = tuple(range(n))
        comp = worst_case_computation(
            big_n, m, seed=seed, predicate_pids=pred_pids
        )
        m_actual = comp.max_messages_per_process()
        wcp = _wcp_over(pred_pids)
        vc = detect_runner.run_detector("token_vc", comp, wcp, seed=seed)
        dd = detect_runner.run_detector("direct_dep", comp, wcp, seed=seed)
        vc_stats = _monitor_stats(vc)
        dd_stats = _monitor_stats(dd)
        rows.append([
            big_n, n, m_actual,
            vc_stats["mon_bits"], dd_stats["mon_bits"],
            vc_stats["total_work"], dd_stats["total_work"],
            "vc" if vc_stats["mon_bits"] <= dd_stats["mon_bits"] else "dd",
            "vc" if vc_stats["total_work"] <= dd_stats["total_work"] else "dd",
        ])
    result = ExperimentResult("E3 crossover n vs N (§1/§6)", headers, rows)
    small_n = rows[0]
    large_n = rows[-1]
    result.notes.append(
        f"smallest n={small_n[1]}: bits winner {small_n[7]}; "
        f"largest n={large_n[1]}: bits winner {large_n[7]}"
    )
    return result


# ----------------------------------------------------------------------
# E4 — §3.5 multi-token concurrency
# ----------------------------------------------------------------------
def run_e4_multi_token(
    n: int = 12,
    m: int = 10,
    group_counts: Sequence[int] = (1, 2, 4, 6),
    seed: int = 0,
) -> ExperimentResult:
    """Makespan (simulated detection time) vs number of tokens g.

    Times are stripped from the trace so the protocol's own latency
    dominates; totals (hops, work) should stay in the same regime while
    the makespan improves with concurrency.
    """
    comp = spiral_computation(n, rounds=max(1, m // 2))
    wcp = _wcp_over(range(n))
    channel = FixedLatency(1.0)
    headers = ["g", "detected", "makespan", "token_hops", "rounds", "total_work"]
    rows: list[list[Any]] = []
    baseline = detect_runner.run_detector(
        "token_vc", comp, wcp, seed=seed, channel_model=channel, spacing=0.01
    )
    rows.append([
        0, baseline.detected, baseline.detection_time,
        baseline.extras["token_hops"], 0,
        _monitor_stats(baseline)["total_work"],
    ])
    for g in group_counts:
        report = detect_runner.run_detector(
            "token_vc_multi", comp, wcp, seed=seed,
            channel_model=channel, spacing=0.01, groups=g,
        )
        rows.append([
            g, report.detected, report.detection_time,
            report.extras["token_hops"], report.extras["rounds"],
            _monitor_stats(report)["total_work"],
        ])
    result = ExperimentResult(
        "E4 multi-token makespan (§3.5); g=0 row is the single-token baseline",
        headers,
        rows,
    )
    return result


# ----------------------------------------------------------------------
# E5 — §4.5 parallel direct-dependence
# ----------------------------------------------------------------------
def run_e5_parallel_dd(
    big_n: int = 12,
    m: int = 10,
    seeds: Sequence[int] = (0, 1, 2),
) -> ExperimentResult:
    """Makespan of base vs parallel direct dependence on the same runs."""
    headers = [
        "seed", "base_makespan", "parallel_makespan", "speedup",
        "base_polls", "parallel_polls",
    ]
    channel = FixedLatency(1.0)
    rows: list[list[Any]] = []
    for seed in seeds:
        comp = spiral_computation(big_n, rounds=max(1, m // 2) + seed)
        wcp = _wcp_over(range(big_n))
        base = detect_runner.run_detector(
            "direct_dep", comp, wcp, seed=seed,
            channel_model=channel, spacing=0.01,
        )
        par = detect_runner.run_detector(
            "direct_dep_parallel", comp, wcp, seed=seed,
            channel_model=channel, spacing=0.01,
        )
        speedup = (
            base.detection_time / par.detection_time
            if base.detection_time and par.detection_time
            else float("nan")
        )
        rows.append([
            seed, base.detection_time, par.detection_time, speedup,
            base.extras["polls"], par.extras["polls"],
        ])
    return ExperimentResult("E5 parallel direct-dependence (§4.5)", headers, rows)


# ----------------------------------------------------------------------
# E6 — §5 lower bound
# ----------------------------------------------------------------------
def run_e6_lower_bound(
    ns: Sequence[int] = (4, 8, 16),
    ms: Sequence[int] = (8, 16, 32),
) -> ExperimentResult:
    """Every S1/S2 strategy pays >= nm - n deletions vs the adversary."""
    headers = ["strategy", "n", "m", "deletions", "bound(nm-n)", "steps", "ok"]
    rows: list[list[Any]] = []
    for strategy in available_strategies():
        for n in ns:
            for m in ms:
                res = play_against_adversary(strategy, n, m)
                rows.append([
                    strategy.name, n, m, res.deletions, res.theorem_bound,
                    res.total_steps, res.deletions >= res.theorem_bound,
                ])
    result = ExperimentResult("E6 lower bound (Theorem 5.1)", headers, rows)
    result.notes.append(f"all within bound: {all(r[6] for r in rows)}")
    greedy_rows = [r for r in rows if r[0] == "greedy"]
    result.fits["steps_vs_nm"] = fit_power_law(
        [r[1] * r[2] for r in greedy_rows], [r[5] for r in greedy_rows]
    )
    return result


# ----------------------------------------------------------------------
# E7 — token algorithm vs centralized checker (space/work distribution)
# ----------------------------------------------------------------------
def run_e7_vs_centralized(
    ns: Sequence[int] = (4, 8, 16),
    m: int = 16,
    seed: int = 0,
) -> ExperimentResult:
    """The paper's headline comparison against the checker baseline [7].

    Two workloads probe the two claims:

    * ``spiral`` (elimination-heavy) shows the *work* story: the checker
      performs all O(n^2 m) comparisons itself, while the token
      algorithm caps any one monitor at O(nm).
    * ``skewed`` (concurrent candidates, one delayed stream) shows the
      *space* story: the checker must buffer O(n^2 m) bits; the token
      algorithm buffers at most O(nm) bits on any monitor, so the
      space ratio grows linearly with n.
    """
    headers = [
        "workload", "n", "m", "checker_space", "token_max_space",
        "space_ratio", "checker_work", "token_max_work", "work_ratio",
        "same_cut",
    ]
    rows: list[list[Any]] = []
    for workload in ("spiral", "skewed"):
        for n in ns:
            if workload == "spiral":
                comp = spiral_computation(n, rounds=max(1, m // 2))
            else:
                comp = skewed_concurrent_computation(n, m)
            m_actual = comp.max_messages_per_process()
            wcp = _wcp_over(range(n))
            cen = detect_runner.run_detector("centralized", comp, wcp, seed=seed)
            tok = detect_runner.run_detector("token_vc", comp, wcp, seed=seed)
            checker_space = cen.metrics.of("checker").buffered_bits_high_water
            token_space = tok.metrics.max_space_per_actor("mon-")
            checker_work = cen.metrics.of("checker").work_units
            token_work = tok.metrics.max_work_per_actor("mon-")
            rows.append([
                workload, n, m_actual, checker_space, token_space,
                checker_space / token_space if token_space else float("inf"),
                checker_work, token_work,
                checker_work / token_work if token_work else float("inf"),
                cen.cut == tok.cut,
            ])
    result = ExperimentResult(
        "E7 centralized checker vs token (§1/§6)", headers, rows
    )
    skewed_rows = [r for r in rows if r[0] == "skewed"]
    result.fits["space_ratio_vs_n"] = fit_power_law(
        [r[1] for r in skewed_rows], [r[5] for r in skewed_rows]
    )
    spiral_rows = [r for r in rows if r[0] == "spiral"]
    result.fits["work_ratio_vs_n"] = fit_power_law(
        [r[1] for r in spiral_rows], [r[8] for r in spiral_rows]
    )
    result.notes.append(f"cuts agree on every row: {all(r[9] for r in rows)}")
    return result


# ----------------------------------------------------------------------
# ----------------------------------------------------------------------
# E8 — cross-algorithm agreement + lattice blowup
# ----------------------------------------------------------------------
def run_e8_agreement(
    seeds: Sequence[int] = tuple(range(8)),
    num_processes: int = 4,
    m: int = 5,
) -> ExperimentResult:
    """All detectors find the same first cut; the lattice baseline pays
    exponentially many state visits to do so."""
    detectors = [
        "reference", "lattice", "centralized", "token_vc",
        "token_vc_multi", "direct_dep", "direct_dep_parallel",
    ]
    headers = ["seed", "detected", "all_agree", "lattice_states", "token_work"]
    rows: list[list[Any]] = []
    for seed in seeds:
        comp = random_computation(
            num_processes, m, seed=seed, predicate_density=0.25,
            plant_final_cut=(seed % 2 == 0),
        )
        wcp = _wcp_over(range(num_processes))
        reports = {}
        for name in detectors:
            kwargs: dict[str, Any] = {}
            if name not in ("reference", "lattice"):
                kwargs["seed"] = seed
            reports[name] = detect_runner.run_detector(name, comp, wcp, **kwargs)
        ref = reports["reference"]
        agree = all(
            (r.detected, r.cut) == (ref.detected, ref.cut)
            for r in reports.values()
        )
        rows.append([
            seed, ref.detected, agree,
            reports["lattice"].extras["states_explored"],
            reports["token_vc"].metrics.total_work("mon-"),
        ])
    result = ExperimentResult("E8 agreement (Theorems 3.2/4.3/4.4)", headers, rows)
    result.notes.append(f"all agree: {all(r[2] for r in rows)}")
    return result


# ----------------------------------------------------------------------
# E9 — ablation: token-routing policy in the §3 algorithm
# ----------------------------------------------------------------------
def run_e9_routing_ablation(
    n: int = 12,
    m: int = 12,
    seeds: Sequence[int] = (0, 1, 2),
) -> ExperimentResult:
    """The paper leaves the "send token to a red process" choice open;
    compare three policies on hops, makespan and work.

    Correctness is policy-independent (every run must detect the same
    cut); the costs differ only by constants — which this table
    quantifies.
    """
    headers = [
        "routing", "workload", "token_hops", "makespan", "total_work",
        "detected",
    ]
    rows: list[list[Any]] = []
    workloads = {
        "spiral": spiral_computation(n, rounds=max(1, m // 2)),
    }
    for seed in seeds:
        workloads[f"random[{seed}]"] = strip_times(
            worst_case_computation(n, m, seed=seed)
        )
    reference_cuts: dict[str, object] = {}
    for routing in ("cyclic", "first", "most_stale"):
        for label, comp in workloads.items():
            wcp = _wcp_over(range(n))
            report = detect_runner.run_detector(
                "token_vc", comp, wcp, seed=0, routing=routing,
                channel_model=FixedLatency(1.0), spacing=0.01,
            )
            key = label
            if key in reference_cuts:
                assert reference_cuts[key] == report.cut, (
                    f"routing {routing} changed the detected cut"
                )
            else:
                reference_cuts[key] = report.cut
            rows.append([
                routing, label, report.extras["token_hops"],
                report.detection_time, _monitor_stats(report)["total_work"],
                report.detected,
            ])
    result = ExperimentResult(
        "E9 ablation: token routing policy (§3)", headers, rows
    )
    result.notes.append("all policies detect the same cut per workload")
    return result


# ----------------------------------------------------------------------
# E10 — average case vs the worst case (§6's closing remark)
# ----------------------------------------------------------------------
def run_e10_average_case(
    n: int = 8,
    m: int = 16,
    densities: Sequence[float] = (0.05, 0.2, 0.5),
    seeds: Sequence[int] = tuple(range(5)),
) -> ExperimentResult:
    """§6: "Although it is not possible to improve upon O(nm) steps in
    the worst case, in the average case faster detection may be
    possible."  Measure token hops as a fraction of the nm worst-case
    budget across random workloads of varying predicate density, with
    the spiral worst case as the anchor row.
    """
    from repro.trace.statistics import compute_stats

    headers = [
        "workload", "density", "mean_hops", "hop_budget(nm)",
        "budget_used", "concurrency_ratio", "detected_runs",
    ]
    rows: list[list[Any]] = []
    spiral = spiral_computation(n, rounds=max(1, m // 2))
    wcp = _wcp_over(range(n))
    spiral_m = spiral.max_messages_per_process()
    spiral_rep = detect_runner.run_detector("token_vc", spiral, wcp, seed=0)
    spiral_stats = compute_stats(spiral)
    rows.append([
        "spiral (worst case)", 1.0, spiral_rep.extras["token_hops"],
        n * (spiral_m + 1),
        spiral_rep.extras["token_hops"] / (n * (spiral_m + 1)),
        spiral_stats.concurrency_ratio, 1,
    ])
    for density in densities:
        hops: list[int] = []
        budgets: list[int] = []
        ratios: list[float] = []
        detected = 0
        for seed in seeds:
            run_seed = seed * 1009 + int(density * 100)
            comp = random_computation(
                n, m, seed=run_seed, predicate_density=density,
                plant_final_cut=True,
            )
            m_actual = comp.max_messages_per_process()
            report = detect_runner.run_detector(
                "token_vc", comp, wcp, seed=run_seed
            )
            hops.append(report.extras["token_hops"])
            budgets.append(n * (m_actual + 1))
            ratios.append(compute_stats(comp).concurrency_ratio)
            detected += int(report.detected)
        mean_hops = sum(hops) / len(hops)
        mean_budget = sum(budgets) / len(budgets)
        rows.append([
            "random", density, mean_hops, mean_budget,
            mean_hops / mean_budget, sum(ratios) / len(ratios), detected,
        ])
    result = ExperimentResult(
        "E10 average case vs worst case (§6)", headers, rows
    )
    result.notes.append(
        "higher predicate density => earlier satisfying cut => smaller "
        "fraction of the nm budget spent"
    )
    return result


# ----------------------------------------------------------------------
# E11 — detection latency: the price of decentralization
# ----------------------------------------------------------------------
def run_e11_detection_latency(
    ns: Sequence[int] = (4, 8, 16),
    m: int = 10,
    seeds: Sequence[int] = (0, 1, 2),
) -> ExperimentResult:
    """How long after the satisfying cut becomes *observable* does each
    algorithm declare it?

    Observation latency = detection time − the arrival time of the last
    snapshot of the detected cut at its monitor.  The centralized
    checker reacts as soon as that snapshot lands; the token algorithms
    must first route the token to wherever work remains — the latency
    the paper trades for its space/work distribution.  Not a claim made
    by the paper; measured here to complete the comparison.
    """
    from repro.trace.snapshots import vc_snapshots

    headers = ["detector", "n", "mean_latency", "max_latency", "runs"]
    rows: list[list[Any]] = []
    channel = FixedLatency(1.0)
    configs = [
        ("centralized", {}),
        ("token_vc", {}),
        ("token_vc_multi", {"groups": 4}),
    ]
    for detector, opts in configs:
        for n in ns:
            latencies: list[float] = []
            for seed in seeds:
                comp = strip_times(
                    worst_case_computation(n, m, seed=seed)
                )
                wcp = _wcp_over(range(n))
                report = detect_runner.run_detector(
                    detector, comp, wcp, seed=seed,
                    channel_model=channel, spacing=1.0, **opts,
                )
                if not report.detected or report.detection_time is None:
                    continue
                # Reconstruct when the cut's last snapshot reached its
                # monitor: feeders emit one snapshot per spacing unit
                # (times were stripped), plus one unit of channel latency.
                streams = vc_snapshots(comp, wcp.predicate_map())
                last_arrival = 0.0
                for pid in wcp.pids:
                    target = report.cut.component(pid)
                    position = next(
                        k for k, snap in enumerate(streams[pid])
                        if snap.interval == target
                    )
                    arrival = (position + 1) * 1.0 + 1.0
                    last_arrival = max(last_arrival, arrival)
                latencies.append(report.detection_time - last_arrival)
            rows.append([
                detector, n,
                sum(latencies) / len(latencies) if latencies else float("nan"),
                max(latencies) if latencies else float("nan"),
                len(latencies),
            ])
    result = ExperimentResult(
        "E11 observation latency (cost of decentralization)", headers, rows
    )
    cen = [r[2] for r in rows if r[0] == "centralized"]
    tok = [r[2] for r in rows if r[0] == "token_vc"]
    result.notes.append(
        f"centralized mean latency {min(cen):.2f}-{max(cen):.2f} vs "
        f"token {min(tok):.2f}-{max(tok):.2f} time units"
    )
    return result


# ----------------------------------------------------------------------
# E12 — strong predicates: polynomial definitely vs exhaustive search
# ----------------------------------------------------------------------
def run_e12_strong_predicates(
    sizes: Sequence[tuple[int, int]] = ((2, 3), (3, 3), (3, 4), (4, 4)),
    big_sizes: Sequence[tuple[int, int]] = ((8, 16), (16, 32), (24, 64)),
    seeds: Sequence[int] = (0, 1, 2),
) -> ExperimentResult:
    """The definitely(φ) extension's cost story.

    Small runs: the polynomial detector agrees with the exhaustive
    state-lattice search while doing orders of magnitude less work.
    Large runs (exhaustive infeasible): the polynomial detector's
    comparisons scale like the weak algorithm's O(n^2 * intervals).
    """
    from repro.detect.strong import detect_definitely
    from repro.trace.state_lattice import (
        StateLatticeAnalysis,
        definitely_states,
    )

    headers = [
        "n", "m", "runs", "agree", "poly_comparisons", "lattice_states",
    ]
    rows: list[list[Any]] = []
    for n, m in sizes:
        agree = True
        comparisons = 0
        lattice_states = 0
        for seed in seeds:
            comp = random_computation(
                n, m, seed=seed, predicate_density=0.5,
            )
            wcp = _wcp_over(range(n))
            fast = detect_definitely(comp, wcp)
            slow = definitely_states(comp, wcp)
            agree = agree and (fast.holds == slow)
            comparisons += fast.comparisons
            # Count the reachable state lattice (the search space).
            analysis = StateLatticeAnalysis(comp)
            frontier = {tuple([0] * n)}
            seen = set(frontier)
            while frontier:
                nxt = set()
                for cut in frontier:
                    for succ in analysis.successors(cut):
                        if succ not in seen:
                            seen.add(succ)
                            nxt.add(succ)
                frontier = nxt
            lattice_states += len(seen)
        rows.append([
            n, m, len(seeds), agree,
            comparisons // len(seeds), lattice_states // len(seeds),
        ])
    for n, m in big_sizes:
        comparisons = 0
        for seed in seeds:
            comp = random_computation(
                n, m, seed=seed, predicate_density=0.5
            )
            wcp = _wcp_over(range(n))
            comparisons += detect_definitely(comp, wcp).comparisons
        rows.append([n, m, len(seeds), True, comparisons // len(seeds), None])
    result = ExperimentResult(
        "E12 strong predicates: polynomial definitely vs exhaustive",
        headers,
        rows,
    )
    result.notes.append(
        "lattice_states is the exhaustive search space; None = infeasible "
        "(only the polynomial detector ran)"
    )
    return result


# ----------------------------------------------------------------------
# E13 — linear GCP: the [6] checker vs the exhaustive lattice
# ----------------------------------------------------------------------
def run_e13_gcp_online(
    small_sizes: Sequence[tuple[int, int]] = ((3, 4), (3, 6), (4, 4)),
    big_sizes: Sequence[tuple[int, int]] = ((8, 16), (12, 32)),
    seeds: Sequence[int] = (0, 1, 2),
) -> ExperimentResult:
    """The channel-predicate extension's cost story.

    Small runs: the online linear-GCP checker returns the same first cut
    as the exhaustive lattice search.  Large runs: the checker's
    comparisons stay polynomial where the lattice is infeasible.
    Workload: ring traffic with one quiescence-style clause per ring
    channel ("channel empty").
    """
    from repro.detect.gcp import GeneralizedConjunctivePredicate, detect_gcp
    from repro.detect.gcp_online import detect_gcp_online
    from repro.predicates.channel import linear_empty_channel

    headers = [
        "n", "m", "runs", "agree", "checker_comparisons",
        "channel_elims", "lattice_states",
    ]
    rows: list[list[Any]] = []

    def channels(n: int):
        return [linear_empty_channel(i, (i + 1) % n) for i in range(n)]

    for n, m in small_sizes:
        agree = True
        comparisons = elims = states = 0
        for seed in seeds:
            comp = random_computation(
                n, m, seed=seed, predicate_density=0.5, pattern="ring",
                plant_final_cut=True,
            )
            wcp = _wcp_over(range(n))
            chans = channels(n)
            online = detect_gcp_online(comp, wcp, chans, seed=seed)
            offline = detect_gcp(
                comp, GeneralizedConjunctivePredicate(wcp, chans)
            )
            agree = agree and (
                (online.detected, online.cut)
                == (offline.detected, offline.cut)
            )
            comparisons += online.extras["comparisons"]
            elims += online.extras["channel_eliminations"]
            states += offline.extras["states_explored"]
        k = len(seeds)
        rows.append([n, m, k, agree, comparisons // k, elims // k, states // k])
    for n, m in big_sizes:
        comparisons = elims = 0
        for seed in seeds:
            comp = random_computation(
                n, m, seed=seed, predicate_density=0.5, pattern="ring",
                plant_final_cut=True,
            )
            wcp = _wcp_over(range(n))
            online = detect_gcp_online(comp, wcp, channels(n), seed=seed)
            comparisons += online.extras["comparisons"]
            elims += online.extras["channel_eliminations"]
        k = len(seeds)
        rows.append([n, m, k, True, comparisons // k, elims // k, None])
    result = ExperimentResult(
        "E13 linear GCP: online checker vs exhaustive lattice",
        headers,
        rows,
    )
    result.notes.append(
        "lattice_states = exhaustive search cost; None = infeasible "
        "(only the online checker ran)"
    )
    return result


# ----------------------------------------------------------------------
# E14 — overhead of the hardened (fault-tolerant) protocol at 0 faults
# ----------------------------------------------------------------------
def run_e14_fault_overhead(
    sizes: Sequence[tuple[int, int]] = ((4, 8), (4, 16), (8, 8), (8, 16)),
    seeds: Sequence[int] = (0, 1, 2),
) -> ExperimentResult:
    """What does crash/loss tolerance cost when nothing actually fails?

    Runs the single-token algorithm (Fig. 3) in both its plain and
    hardened forms on identical fault-free workloads.  The hardened
    protocol adds one ack per token hop, one cumulative ack per feeder
    stream and a reliable-halt handshake — the detection logic itself
    is unchanged, so both must report the same first cut.  Not a paper
    claim; measured to justify keeping hardening opt-in.
    """
    headers = [
        "n", "m", "plain_msgs", "hard_msgs", "msg_ratio",
        "plain_bits", "hard_bits", "bit_ratio", "agree",
    ]
    rows: list[list[Any]] = []
    for n, m in sizes:
        plain_msgs = hard_msgs = plain_bits = hard_bits = 0
        agree = True
        for seed in seeds:
            comp = random_computation(
                n, m, seed=seed, predicate_density=0.3,
                plant_final_cut=True,
            )
            wcp = _wcp_over(range(n))
            plain = detect_runner.run_detector(
                "token_vc", comp, wcp, seed=seed,
            )
            hard = detect_runner.run_detector(
                "token_vc", comp, wcp, seed=seed, hardened=True,
            )
            agree = agree and (
                (plain.detected, plain.cut) == (hard.detected, hard.cut)
            )
            plain_msgs += plain.metrics.total_messages()
            hard_msgs += hard.metrics.total_messages()
            plain_bits += plain.metrics.total_bits()
            hard_bits += hard.metrics.total_bits()
        rows.append([
            n, m, plain_msgs, hard_msgs,
            round(hard_msgs / plain_msgs, 3) if plain_msgs else float("nan"),
            plain_bits, hard_bits,
            round(hard_bits / plain_bits, 3) if plain_bits else float("nan"),
            agree,
        ])
    result = ExperimentResult(
        "E14 hardened-protocol overhead at zero faults", headers, rows
    )
    msg_ratios = [r[4] for r in rows]
    bit_ratios = [r[7] for r in rows]
    result.notes.append(
        f"msg_ratio {min(msg_ratios):.2f}-{max(msg_ratios):.2f}, "
        f"bit_ratio {min(bit_ratios):.2f}-{max(bit_ratios):.2f}: "
        "per-hop acks and frame headers; token hops and detection "
        "work are unchanged"
    )
    result.notes.append(
        "both variants report identical cuts on every workload"
        if all(r[8] for r in rows)
        else "MISMATCH: hardened variant disagreed with plain variant"
    )
    return result
