"""Shared type aliases and small value types used across the library.

The paper indexes processes ``P_1 .. P_N`` starting at 1; Python naturally
indexes from 0.  Throughout this library a *process id* (``Pid``) is a
0-based integer and an *interval index* (``IntervalIndex``) is the 1-based
vector-clock component the paper calls ``k`` in the state label ``(i, k)``.
The sentinel interval index ``0`` means "no state chosen yet", exactly as
in the paper's token initialization ``G[i] = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

__all__ = [
    "Pid",
    "IntervalIndex",
    "StateRef",
    "LocalPredicateFn",
    "NO_STATE",
    "WORD_BITS",
]

# A process identifier: 0-based index into the process list.
Pid = int

# A 1-based interval (communication-free state block) index; 0 = "none yet".
IntervalIndex = int

# Sentinel interval index used for "no candidate selected yet" (paper: G[i]=0).
NO_STATE: IntervalIndex = 0

# Accounting convention for message-size measurements: one machine word.
WORD_BITS: int = 32

# A local predicate evaluated on a mapping of variable name -> value.
LocalPredicateFn = Callable[[Mapping[str, object]], bool]


@dataclass(frozen=True, slots=True, order=True)
class StateRef:
    """Reference to the paper's state label ``(i, k)``.

    ``pid`` is the 0-based process index and ``interval`` the 1-based
    interval index on that process.  ``StateRef`` is ordered (pid-major)
    only so it can be used in sorted containers; the ordering carries no
    causal meaning.
    """

    pid: Pid
    interval: IntervalIndex

    def __post_init__(self) -> None:
        if self.pid < 0:
            raise ValueError(f"pid must be >= 0, got {self.pid}")
        if self.interval < 0:
            raise ValueError(f"interval must be >= 0, got {self.interval}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"(P{self.pid}, {self.interval})"
