"""Seeded random-number helpers.

Every stochastic component in the library (workload generators, channel
latency models, the simulation kernel's tie-breaking) draws from a
``random.Random`` instance created through :func:`make_rng` so that runs
are reproducible from a single integer seed.  Child generators derive
their seeds deterministically from the parent seed and a string label,
which keeps independent components decoupled: adding a new consumer of
randomness does not perturb the streams seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["make_rng", "derive_seed", "spawn_rng"]


def make_rng(seed: int | None) -> random.Random:
    """Return a ``random.Random`` seeded with ``seed``.

    ``None`` yields a nondeterministically seeded generator (only useful
    interactively; all library call sites pass explicit seeds).
    """
    return random.Random(seed)


def derive_seed(seed: int, label: str) -> int:
    """Derive a child seed from ``seed`` and a stable string ``label``.

    Uses SHA-256 over the ``(seed, label)`` pair, so the mapping is stable
    across Python versions and processes (unlike ``hash``, which is
    randomized per interpreter run).
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def spawn_rng(seed: int, label: str) -> random.Random:
    """Return a generator seeded from ``derive_seed(seed, label)``."""
    return make_rng(derive_seed(seed, label))
