"""Small argument-validation helpers.

These helpers keep constructor bodies readable and produce consistent
error messages.  They raise :class:`~repro.common.errors.ConfigurationError`
(a ``ValueError`` subclass) so user-facing APIs fail with familiar types.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.common.errors import ConfigurationError

__all__ = [
    "require",
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "require_length",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def require_positive(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    return value


def require_non_negative(value: int, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ConfigurationError(f"{name} must be a non-negative integer, got {value!r}")
    return value


def require_in_range(value: float, low: float, high: float, name: str) -> float:
    """Validate ``low <= value <= high`` and return ``value``."""
    if not (low <= value <= high):
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def require_length(seq: Sequence[object], length: int, name: str) -> Sequence[object]:
    """Validate that ``seq`` has exactly ``length`` elements and return it."""
    if len(seq) != length:
        raise ConfigurationError(f"{name} must have length {length}, got {len(seq)}")
    return seq
