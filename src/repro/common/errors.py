"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing programming errors (``ValueError``/``TypeError``
subclasses) from runtime protocol failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidComputationError",
    "ClockError",
    "CutError",
    "SimulationError",
    "DeadlockError",
    "ProtocolError",
    "DetectionError",
    "ConfigurationError",
    "SerializationError",
    "LowerBoundError",
    "ObservabilityError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidComputationError(ReproError, ValueError):
    """A recorded computation violates a structural invariant.

    Examples: a receive event without a matching send, a message received
    before it was sent on the same process, or per-process event indices
    that are not contiguous.
    """


class ClockError(ReproError, ValueError):
    """A logical clock operation was used incorrectly.

    Examples: merging vector clocks of different widths, or comparing
    clocks drawn from computations with different process sets.
    """


class CutError(ReproError, ValueError):
    """A global cut is malformed (wrong width, out-of-range indices)."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation kernel reached an invalid state."""


class DeadlockError(SimulationError):
    """All actors are blocked on receives and no messages are in flight.

    Detection protocols deliberately block when the monitored predicate
    never becomes true; the kernel reports this as a deadlock and the
    detection runner translates it into a "not detected" outcome.  A
    deadlock is therefore not always a bug — but it is always final.
    """


class ProtocolError(ReproError, RuntimeError):
    """A detection protocol violated one of its own invariants.

    These errors indicate a bug in the implementation (or a corrupted
    token), never a property of the monitored computation.
    """


class DetectionError(ReproError, RuntimeError):
    """A detection run could not produce a verdict."""


class ConfigurationError(ReproError, ValueError):
    """Invalid user-supplied configuration (bad group map, sizes, seeds)."""


class SerializationError(ReproError, ValueError):
    """A computation or report could not be encoded or decoded."""


class LowerBoundError(ReproError, RuntimeError):
    """The lower-bound game was driven outside its legal move set."""


class ObservabilityError(ReproError, ValueError):
    """A span trace is malformed (missing fields, cyclic parent links)."""
