"""Cross-cutting utilities: errors, type aliases, RNG helpers, validation."""

from repro.common.errors import (
    ClockError,
    ConfigurationError,
    CutError,
    DeadlockError,
    DetectionError,
    InvalidComputationError,
    LowerBoundError,
    ObservabilityError,
    ProtocolError,
    ReproError,
    SerializationError,
    SimulationError,
)
from repro.common.rng import derive_seed, make_rng, spawn_rng
from repro.common.types import NO_STATE, WORD_BITS, IntervalIndex, Pid, StateRef

__all__ = [
    "ReproError",
    "InvalidComputationError",
    "ClockError",
    "CutError",
    "SimulationError",
    "DeadlockError",
    "ProtocolError",
    "DetectionError",
    "ConfigurationError",
    "SerializationError",
    "LowerBoundError",
    "ObservabilityError",
    "make_rng",
    "derive_seed",
    "spawn_rng",
    "Pid",
    "IntervalIndex",
    "StateRef",
    "NO_STATE",
    "WORD_BITS",
]
