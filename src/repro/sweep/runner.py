"""Parallel sweep execution and streaming aggregation.

``run_sweep(matrix, ...)`` fans the matrix's cells out over worker
processes (``workers=1`` runs inline, which is also the reference for
the determinism guarantee: the paper-unit metrics of every cell are
identical no matter how many workers computed them).  Results stream
back through an unordered channel and are folded into a
:class:`SweepResult` as they arrive; the final aggregate is sorted by
cell id so its JSON form is canonical.

A cell that raises inside a worker becomes an *error record* — it never
contaminates the aggregate rows, and callers (the CLI, ``bench-check``)
must treat any error as a failed sweep (nonzero exit)."""

from __future__ import annotations

import math
import multiprocessing
import pathlib
import time
import traceback
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Mapping

from repro.detect.runner import (
    offline_detectors,
    paper_units,
    run_detector,
    run_service,
)
from repro.detect.service import service_units
from repro.obs.benchjson import structured_result
from repro.predicates import WeakConjunctivePredicate
from repro.detect.stack import FailureDetectorConfig
from repro.simulation.faults import FaultPlan
from repro.sweep.cache import WorkloadCache
from repro.sweep.matrix import SweepCell, SweepMatrix

__all__ = ["SweepResult", "run_cell", "run_sweep", "median", "p95"]


def median(values: list[float]) -> float:
    """The deterministic median (mean of middle pair on even counts)."""
    ordered = sorted(values)
    count = len(ordered)
    if count == 0:
        raise ValueError("median of empty list")
    mid = count // 2
    if count % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def p95(values: list[float]) -> float:
    """The deterministic 95th percentile (nearest-rank method)."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("p95 of empty list")
    rank = math.ceil(0.95 * len(ordered))
    return ordered[min(len(ordered) - 1, rank - 1)]


def _safe_cell_name(cell_id: str) -> str:
    """A cell id flattened into a filesystem-safe file stem."""
    return cell_id.replace("/", "_").replace(":", "-").replace("*", "any")


def run_cell(
    cell: SweepCell,
    cache_root: str | pathlib.Path,
    trace_dir: str | pathlib.Path | None = None,
    flight_dir: str | pathlib.Path | None = None,
    sample_seeds: tuple[int, ...] = (),
) -> dict[str, Any]:
    """Execute one cell and return its result record.

    The record carries the cell identity, the exact paper-unit metrics
    (via :func:`repro.detect.runner.paper_units`), the wall time and the
    cache outcome for this cell's workload.  Raises whatever the
    generator or detector raises — fan-out wraps this in
    :func:`_run_cell_safe`.

    ``trace_dir`` + ``sample_seeds`` record a full span trace (JSONL)
    for the deterministic sample of cells whose seed is in
    ``sample_seeds``; ``flight_dir`` arms a
    :class:`~repro.obs.invariants.FlightRecorder` on every online cell
    and dumps its ring to disk only when the cell errors, degrades, or
    violates an invariant.  Both paths add the written filename to the
    record (``trace_file`` / ``flight_file``).
    """
    started = time.perf_counter()
    cache = WorkloadCache(cache_root)
    computation = cache.get_or_generate(cell.workload_spec())
    service = cell.n_predicates > 1
    wcp = WeakConjunctivePredicate.of_flags(cell.predicate_pids(), var=cell.flag_var)
    options: dict[str, Any] = {}
    online = cell.detector not in offline_detectors()
    if online:
        options["seed"] = cell.seed
        if cell.clock_backend != "list":
            options["clock_backend"] = cell.clock_backend
    if cell.faults is not None:
        options["faults"] = FaultPlan.parse(cell.faults)
    if cell.self_heal and cell.faults is not None:
        fd_options: dict[str, Any] = {}
        if cell.gossip_interval is not None:
            fd_options["gossip_interval"] = cell.gossip_interval
        if cell.gossip_timeout is not None:
            fd_options["gossip_timeout"] = cell.gossip_timeout
        options["failure_detector"] = FailureDetectorConfig(
            membership=cell.membership,
            gossip_fanout=cell.gossip_fanout,
            **fd_options,
        )
    if cell.check_invariants:
        options["check_invariants"] = True
    tracer = None
    recorder = None
    observers: list[Any] = []
    if online and trace_dir is not None and cell.seed in sample_seeds:
        from repro.obs.tracer import SpanTracer

        tracer = SpanTracer()
        observers.append(tracer)
    if online and flight_dir is not None:
        from repro.obs.invariants import FlightRecorder

        recorder = FlightRecorder()
        observers.append(recorder)
    if observers:
        options["observers"] = observers
    try:
        if service:
            # A service cell runs every derived predicate over one
            # shared causality layer; its exact per-predicate verdicts
            # land in the units as ``outcome:<pred_id>`` entries.
            entries = [
                (pred_id, WeakConjunctivePredicate.of_flags(pids, var=cell.flag_var))
                for pred_id, pids in cell.service_predicates()
            ]
            report = run_service(cell.detector, computation, entries, **options)
        else:
            report = run_detector(cell.detector, computation, wcp, **options)
    except Exception:
        if recorder is not None:
            _dump_flight(recorder, flight_dir, cell, outcome="error")
        raise
    stats = cache.stats()
    faults = getattr(getattr(report, "sim", None), "faults", None)
    record = {
        "id": cell.cell_id,
        "group": cell.group,
        "cell": cell.to_dict(),
        "units": service_units(report) if service else paper_units(report),
        "liveness_bytes": faults.liveness_bytes if faults is not None else 0,
        "wall_s": time.perf_counter() - started,
        "cache_hit": stats["hits"] > 0,
        "cache_corrupt": stats["corrupt"] > 0,
    }
    if tracer is not None:
        from repro.obs.export import dump_jsonl

        sim = getattr(report, "sim", None)
        trace = tracer.finish(
            sim.time if sim is not None else None,
            cell=cell.cell_id,
            detector=report.detector,
            outcome=report.summary if service else report.outcome,
            seed=cell.seed,
        )
        path = pathlib.Path(trace_dir) / f"{_safe_cell_name(cell.cell_id)}.jsonl"
        path.parent.mkdir(parents=True, exist_ok=True)
        record["trace_file"] = str(dump_jsonl(trace, path))
    violations = int(report.extras.get("invariant_violations", 0) or 0)
    if recorder is not None and (report.degraded or violations):
        record["flight_file"] = str(
            _dump_flight(
                recorder,
                flight_dir,
                cell,
                outcome=report.summary if service else report.outcome,
                invariant_violations=violations,
            )
        )
    return record


def _dump_flight(
    recorder: Any,
    flight_dir: str | pathlib.Path | None,
    cell: SweepCell,
    **meta: Any,
) -> pathlib.Path:
    assert flight_dir is not None
    path = (
        pathlib.Path(flight_dir)
        / f"{_safe_cell_name(cell.cell_id)}.flight.jsonl"
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    return recorder.dump(path, cell=cell.cell_id, **meta)


def _run_cell_safe(
    cell: SweepCell,
    cache_root: str,
    trace_dir: str | None = None,
    flight_dir: str | None = None,
    sample_seeds: tuple[int, ...] = (),
) -> dict[str, Any]:
    """``run_cell`` that degrades exceptions into error records."""
    try:
        return run_cell(
            cell,
            cache_root,
            trace_dir=trace_dir,
            flight_dir=flight_dir,
            sample_seeds=sample_seeds,
        )
    except Exception as exc:  # noqa: BLE001 - worker boundary
        return {
            "id": cell.cell_id,
            "group": cell.group,
            "cell": cell.to_dict(),
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }


_GROUP_HEADERS = [
    "group",
    "cells",
    "med_token_hops",
    "p95_token_hops",
    "med_mon_msgs",
    "p95_mon_msgs",
    "med_work",
    "p95_work",
    "med_wall_ms",
]


@dataclass
class SweepResult:
    """The aggregate of one sweep run.

    Exposes ``experiment`` / ``headers`` / ``rows`` / ``fits`` /
    ``notes`` so :func:`repro.obs.benchjson.structured_result` can emit
    it as a ``repro-bench/1`` document; :meth:`aggregate` additionally
    embeds the per-cell records under a ``"sweep"`` key, which is what
    the baseline comparator consumes.
    """

    matrix: SweepMatrix
    records: list[dict[str, Any]]
    errors: list[dict[str, Any]]
    workers: int
    wall_time_s: float
    cache_stats: dict[str, int]
    fits: dict[str, Any] = field(default_factory=dict)

    @property
    def experiment(self) -> str:
        return f"sweep:{self.matrix.name}"

    @property
    def headers(self) -> list[str]:
        return list(_GROUP_HEADERS)

    @property
    def rows(self) -> list[list[Any]]:
        """Per-group summary rows (median/p95 over the group's seeds)."""
        groups: dict[str, list[dict[str, Any]]] = {}
        for record in self.records:
            groups.setdefault(record["group"], []).append(record)
        rows: list[list[Any]] = []
        for group in sorted(groups):
            members = groups[group]
            row: list[Any] = [group, len(members)]
            for unit_key in ("token_hops", "mon_msgs", "total_work"):
                values = [
                    record["units"][unit_key]
                    for record in members
                    if unit_key in record["units"]
                ]
                if values:
                    row.extend([median(values), p95(values)])
                else:
                    row.extend(["-", "-"])
            walls = [record["wall_s"] for record in members]
            row.append(round(median(walls) * 1000.0, 3))
            rows.append(row)
        return rows

    @property
    def notes(self) -> list[str]:
        cache = self.cache_stats
        notes = [
            f"cells={len(self.records)} errors={len(self.errors)} "
            f"workers={self.workers}",
            f"workload cache: hits={cache.get('hits', 0)} "
            f"misses={cache.get('misses', 0)} "
            f"corrupt={cache.get('corrupt', 0)}",
        ]
        return notes

    @property
    def ok(self) -> bool:
        """Whether every cell completed without raising."""
        return not self.errors

    def paper_units_view(self) -> dict[str, dict[str, Any]]:
        """Per-cell paper units only — the worker-count-invariant view.

        Two sweeps of the same matrix must produce byte-identical JSON
        dumps of this view regardless of ``workers``; wall times and
        cache hit patterns are deliberately excluded.
        """
        return {record["id"]: dict(record["units"]) for record in self.records}

    def group_wall_medians(self) -> dict[str, float]:
        """Median wall seconds per group (the regression-tolerance gauge)."""
        groups: dict[str, list[float]] = {}
        for record in self.records:
            groups.setdefault(record["group"], []).append(record["wall_s"])
        return {group: median(walls) for group, walls in sorted(groups.items())}

    def aggregate(self) -> dict[str, Any]:
        """The full ``repro-bench/1`` JSON document for this sweep."""
        doc = structured_result(
            self, params=self.matrix.to_dict(), wall_time_s=self.wall_time_s
        )
        doc["sweep"] = {
            "workers": self.workers,
            "cache": dict(self.cache_stats),
            "cells": [
                {
                    "id": record["id"],
                    "group": record["group"],
                    "cell": record["cell"],
                    "units": record["units"],
                    "wall_s": record["wall_s"],
                }
                for record in self.records
            ],
            "errors": [
                {"id": record["id"], "error": record["error"]}
                for record in self.errors
            ],
        }
        return doc


def _fold(
    record: Mapping[str, Any],
    records: list[dict[str, Any]],
    errors: list[dict[str, Any]],
    cache_stats: dict[str, int],
    on_result: Callable[[Mapping[str, Any]], None] | None,
) -> None:
    entry = dict(record)
    if "error" in entry:
        errors.append(entry)
    else:
        records.append(entry)
        if entry.pop("cache_hit", False):
            cache_stats["hits"] += 1
        else:
            cache_stats["misses"] += 1
        if entry.pop("cache_corrupt", False):
            cache_stats["corrupt"] += 1
    if on_result is not None:
        on_result(entry)


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork keeps worker start cheap and inherits in-process detector
    # registrations; fall back to the platform default elsewhere.
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_sweep(
    matrix: SweepMatrix,
    cache_root: str | pathlib.Path,
    workers: int = 1,
    on_result: Callable[[Mapping[str, Any]], None] | None = None,
    trace_dir: str | pathlib.Path | None = None,
    trace_sample: int = 0,
    flight_dir: str | pathlib.Path | None = None,
) -> SweepResult:
    """Run every cell of ``matrix``; fan out over ``workers`` processes.

    ``on_result`` (if given) observes each record as it streams in —
    progress reporting, not transformation.  Cells that raise are
    collected as error records on the result; see
    :attr:`SweepResult.ok`.

    ``trace_dir`` + ``trace_sample=N`` record full span traces for the N
    lowest seeds of every group (a deterministic sample, so reruns
    overwrite the same files); ``flight_dir`` arms a flight recorder on
    every online cell, dumping ring-buffer JSONL only for cells that
    error, degrade or violate a protocol invariant.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if trace_sample < 0:
        raise ValueError(f"trace_sample must be >= 0, got {trace_sample}")
    sample_seeds: tuple[int, ...] = ()
    if trace_dir is not None and trace_sample > 0:
        sample_seeds = tuple(sorted(matrix.seeds)[:trace_sample])
    cells = matrix.cells()
    records: list[dict[str, Any]] = []
    errors: list[dict[str, Any]] = []
    cache_stats = {"hits": 0, "misses": 0, "corrupt": 0}
    started = time.perf_counter()
    task = partial(
        _run_cell_safe,
        cache_root=str(cache_root),
        trace_dir=None if trace_dir is None else str(trace_dir),
        flight_dir=None if flight_dir is None else str(flight_dir),
        sample_seeds=sample_seeds,
    )
    if workers == 1:
        for cell in cells:
            _fold(task(cell), records, errors, cache_stats, on_result)
    else:
        ctx = _pool_context()
        with ctx.Pool(processes=workers) as pool:
            for record in pool.imap_unordered(task, cells, chunksize=1):
                _fold(record, records, errors, cache_stats, on_result)
    records.sort(key=lambda record: record["id"])
    errors.sort(key=lambda record: record["id"])
    return SweepResult(
        matrix=matrix,
        records=records,
        errors=errors,
        workers=workers,
        wall_time_s=time.perf_counter() - started,
        cache_stats=cache_stats,
    )
