"""Sweep matrices: declarative cross-products of detection runs.

A :class:`SweepMatrix` names every axis the harness can vary — detector,
process count ``N``, sends per process ``m``, communication pattern,
predicate density, predicate width ``n``, fault plan and seed — and
expands to a deterministic list of :class:`SweepCell` runs.  Cells that
differ only by seed share a *group*; the aggregator reports per-group
summary statistics and the baseline comparator checks per-cell paper
units exactly.

Matrices serialize to plain JSON (see :meth:`SweepMatrix.to_dict`) so a
committed baseline file carries the exact matrix it was measured from
and ``repro bench-check`` can replay it verbatim.
"""

from __future__ import annotations

import itertools
import json
import pathlib
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.clocks.vector import CLOCK_BACKENDS
from repro.common.errors import ConfigurationError
from repro.common.validation import require
from repro.detect.runner import DETECTORS, FAULT_CAPABLE, online_detectors
from repro.detect.service.dispatcher import MUX_DETECTORS
from repro.trace.generators import FLAG_VAR, WorkloadSpec

__all__ = ["SweepCell", "SweepMatrix", "load_matrix"]

#: Hard ceiling on matrix expansion, a guard against typo'd axes.
MAX_CELLS = 100_000

#: Cell-description keys an ``exclude`` entry may constrain (the axis
#: projections of :meth:`SweepCell.to_dict`).
EXCLUDE_KEYS = frozenset(
    {
        "detector",
        "processes",
        "sends",
        "pattern",
        "density",
        "pred_width",
        "seed",
        "faults",
        "membership",
        "gossip_fanout",
        "gossip_interval",
        "gossip_timeout",
        "clock_backend",
        "n_predicates",
    }
)


def _fmt_density(density: float) -> str:
    return f"{density:g}"


@dataclass(frozen=True, slots=True)
class SweepCell:
    """One detection run: a workload point plus a detector and seed."""

    detector: str
    num_processes: int
    sends_per_process: int
    pattern: str = "uniform"
    predicate_density: float = 0.1
    pred_width: int | None = None
    plant_final_cut: bool = True
    internal_rate: float = 0.5
    seed: int = 0
    faults: str | None = None
    self_heal: bool = False
    membership: str = "heartbeat"
    gossip_fanout: int = 3
    gossip_interval: float | None = None
    gossip_timeout: float | None = None
    check_invariants: bool = False
    clock_backend: str = "list"
    n_predicates: int = 1

    def __post_init__(self) -> None:
        require(
            self.detector in DETECTORS,
            f"unknown detector {self.detector!r}; available: {sorted(DETECTORS)}",
        )
        require(self.num_processes >= 2, "num_processes must be >= 2")
        require(self.sends_per_process >= 0, "sends_per_process must be >= 0")
        if self.pred_width is not None:
            require(
                1 <= self.pred_width <= self.num_processes,
                f"pred_width must be in [1, {self.num_processes}], "
                f"got {self.pred_width}",
            )
        if self.faults is not None:
            require(
                self.detector in FAULT_CAPABLE,
                f"detector {self.detector!r} is not fault-capable; "
                f"faults require one of {sorted(FAULT_CAPABLE)}",
            )
        if self.self_heal:
            require(
                self.detector in FAULT_CAPABLE,
                f"detector {self.detector!r} is not fault-capable; "
                f"self_heal requires one of {sorted(FAULT_CAPABLE)}",
            )
        require(
            self.membership in ("heartbeat", "gossip"),
            f"membership must be 'heartbeat' or 'gossip', "
            f"got {self.membership!r}",
        )
        require(self.gossip_fanout >= 1, "gossip_fanout must be >= 1")
        for knob, value in (
            ("gossip_interval", self.gossip_interval),
            ("gossip_timeout", self.gossip_timeout),
        ):
            if value is not None:
                require(value > 0, f"{knob} must be > 0, got {value}")
                require(
                    self.membership == "gossip",
                    f"{knob} only applies to membership='gossip'",
                )
        if self.check_invariants:
            require(
                self.detector in online_detectors(),
                f"detector {self.detector!r} is offline (no live message "
                f"stream); check_invariants requires one of "
                f"{sorted(online_detectors())}",
            )
        if self.membership != "heartbeat":
            require(
                self.self_heal,
                "membership='gossip' requires self_heal (the failure "
                "detector is the layer being selected)",
            )
        require(
            self.clock_backend in CLOCK_BACKENDS,
            f"clock_backend must be one of {CLOCK_BACKENDS}, "
            f"got {self.clock_backend!r}",
        )
        if self.clock_backend != "list":
            require(
                self.detector in online_detectors(),
                f"detector {self.detector!r} is offline (analysis-only); "
                f"clock_backend={self.clock_backend!r} requires one of "
                f"{sorted(online_detectors())}",
            )
        require(self.n_predicates >= 1, "n_predicates must be >= 1")
        if self.n_predicates > 1:
            require(
                self.detector in online_detectors(),
                f"detector {self.detector!r} is offline (analysis-only); "
                f"n_predicates > 1 requires one of "
                f"{sorted(online_detectors())}",
            )
            require(
                not self.check_invariants,
                "check_invariants is not wired through the service "
                "dispatcher yet; run it at n_predicates=1",
            )
            require(
                not self.self_heal,
                "the multiplexed service runs without a failure detector "
                "(epoch 0 end-to-end); self_heal requires n_predicates=1",
            )
            if self.faults is not None:
                # Amortized (non-multiplexed) service runs launch one
                # independent detection per predicate, whose monitor set
                # may not contain the actors a fault plan names.
                require(
                    self.detector in MUX_DETECTORS,
                    f"faults with n_predicates > 1 require a multiplexed "
                    f"detector ({sorted(MUX_DETECTORS)}); "
                    f"{self.detector!r} runs amortized per-predicate",
                )

    @property
    def group(self) -> str:
        """The cell's seed-independent identity (aggregation key)."""
        width = "all" if self.pred_width is None else str(self.pred_width)
        faults = self.faults if self.faults else "none"
        heal = "/heal" if self.self_heal else ""
        gossip = (
            f"/gossip{self.gossip_fanout}"
            if self.membership != "heartbeat"
            else ""
        )
        # Default (None) timing knobs contribute no suffix, so committed
        # baseline group names predate the axes and replay unchanged.
        if self.gossip_interval is not None:
            gossip += f"/gi{self.gossip_interval:g}"
        if self.gossip_timeout is not None:
            gossip += f"/gt{self.gossip_timeout:g}"
        inv = "/inv" if self.check_invariants else ""
        # The default list backend contributes no suffix, so committed
        # baseline group names predate the knob and replay unchanged.
        packed = "/packed" if self.clock_backend == "packed" else ""
        # The single-predicate default contributes no suffix, so every
        # baseline committed before the service axis replays unchanged.
        preds = f"/p{self.n_predicates}" if self.n_predicates > 1 else ""
        return (
            f"{self.detector}/n{self.num_processes}/m{self.sends_per_process}"
            f"/{self.pattern}/d{_fmt_density(self.predicate_density)}"
            f"/w{width}/f{faults}{heal}{gossip}{inv}{packed}{preds}"
        )

    @property
    def cell_id(self) -> str:
        """The cell's full identity, unique within a matrix."""
        return f"{self.group}/s{self.seed}"

    def predicate_pids(self) -> tuple[int, ...]:
        """The pids carrying a local predicate (and the WCP's pids)."""
        if self.pred_width is None:
            return tuple(range(self.num_processes))
        return tuple(range(self.pred_width))

    def workload_spec(self) -> WorkloadSpec:
        """The generator parameters for this cell's workload."""
        pids = None if self.pred_width is None else self.predicate_pids()
        return WorkloadSpec(
            num_processes=self.num_processes,
            sends_per_process=self.sends_per_process,
            pattern=self.pattern,
            internal_rate=self.internal_rate,
            predicate_pids=pids,
            predicate_density=self.predicate_density,
            plant_final_cut=self.plant_final_cut,
            seed=self.seed,
        )

    @property
    def flag_var(self) -> str:
        """The variable the generated workload uses for predicate truth."""
        return FLAG_VAR

    def service_predicates(self) -> tuple[tuple[str, tuple[int, ...]], ...]:
        """The ``(pred_id, pids)`` entries a service cell registers.

        Predicate ``k`` rotates the base pid set by ``k`` (mod ``N``), so
        the registered predicates overlap but are not identical — the
        shape that exercises both the shared candidate stream and
        per-predicate token routing.  Deterministic in the cell alone,
        so replaying a baseline reconstructs the exact registry.
        """
        base = self.predicate_pids()
        return tuple(
            (
                f"q{k}",
                tuple(sorted({(pid + k) % self.num_processes for pid in base})),
            )
            for k in range(self.n_predicates)
        )

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready description (embedded in aggregate records)."""
        return {
            "detector": self.detector,
            "processes": self.num_processes,
            "sends": self.sends_per_process,
            "pattern": self.pattern,
            "density": self.predicate_density,
            "pred_width": self.pred_width,
            "plant_final_cut": self.plant_final_cut,
            "internal_rate": self.internal_rate,
            "seed": self.seed,
            "faults": self.faults,
            "self_heal": self.self_heal,
            "membership": self.membership,
            "gossip_fanout": self.gossip_fanout,
            "gossip_interval": self.gossip_interval,
            "gossip_timeout": self.gossip_timeout,
            "check_invariants": self.check_invariants,
            "clock_backend": self.clock_backend,
            "n_predicates": self.n_predicates,
        }


def _require_axis(values: Sequence[Any], name: str) -> tuple[Any, ...]:
    axis = tuple(values)
    require(len(axis) > 0, f"matrix axis {name!r} must be non-empty")
    require(
        len(set(axis)) == len(axis),
        f"matrix axis {name!r} has duplicate entries: {axis}",
    )
    return axis


@dataclass(frozen=True)
class SweepMatrix:
    """A cross-product of sweep axes, expanding to ``cells()``.

    Fault specs pair only with fault-capable detectors: a detector
    without a hardened variant contributes one fault-free cell per
    workload point instead of one cell per fault spec.
    """

    name: str
    detectors: tuple[str, ...]
    processes: tuple[int, ...]
    sends: tuple[int, ...]
    patterns: tuple[str, ...] = ("uniform",)
    densities: tuple[float, ...] = (0.1,)
    pred_widths: tuple[int | None, ...] = (None,)
    seeds: tuple[int, ...] = (0,)
    faults: tuple[str | None, ...] = (None,)
    plant_final_cut: bool = True
    internal_rate: float = 0.5
    self_heal: bool = False
    membership: tuple[str, ...] = ("heartbeat",)
    gossip_fanouts: tuple[int, ...] = (3,)
    gossip_intervals: tuple[float | None, ...] = (None,)
    gossip_timeouts: tuple[float | None, ...] = (None,)
    check_invariants: bool = False
    clock_backends: tuple[str, ...] = ("list",)
    n_predicates: tuple[int, ...] = (1,)
    exclude: tuple[Mapping[str, Any], ...] = ()

    def __post_init__(self) -> None:
        require(bool(self.name), "matrix name must be non-empty")
        entries = []
        for entry in self.exclude:
            require(
                isinstance(entry, Mapping) and len(entry) > 0,
                "exclude entries must be non-empty objects of "
                "axis-name -> value",
            )
            unknown_keys = sorted(set(entry) - EXCLUDE_KEYS)
            require(
                not unknown_keys,
                f"exclude entry has unknown keys {unknown_keys}; "
                f"expected a subset of {sorted(EXCLUDE_KEYS)}",
            )
            entries.append(dict(entry))
        object.__setattr__(self, "exclude", tuple(entries))
        for axis_name in (
            "detectors",
            "processes",
            "sends",
            "patterns",
            "densities",
            "pred_widths",
            "seeds",
            "faults",
            "membership",
            "gossip_fanouts",
            "gossip_intervals",
            "gossip_timeouts",
            "clock_backends",
            "n_predicates",
        ):
            object.__setattr__(
                self,
                axis_name,
                _require_axis(getattr(self, axis_name), axis_name),
            )
        unknown = sorted(set(self.detectors) - set(DETECTORS))
        require(
            not unknown,
            f"unknown detectors {unknown}; available: {sorted(DETECTORS)}",
        )
        bad_membership = sorted(
            set(self.membership) - {"heartbeat", "gossip"}
        )
        require(
            not bad_membership,
            f"unknown membership modes {bad_membership}; "
            f"expected 'heartbeat' and/or 'gossip'",
        )
        require(
            all(f >= 1 for f in self.gossip_fanouts),
            "gossip_fanouts entries must be >= 1",
        )
        for axis_name in ("gossip_intervals", "gossip_timeouts"):
            require(
                all(v is None or v > 0 for v in getattr(self, axis_name)),
                f"{axis_name} entries must be positive (or null for the "
                f"config default)",
            )
            require(
                getattr(self, axis_name) == (None,)
                or "gossip" in self.membership,
                f"{axis_name} axis is set but the membership axis has no "
                f"'gossip' entry to apply it to",
            )
        require(
            "gossip" not in self.membership or self.self_heal,
            "membership axis includes 'gossip' but self_heal is false; "
            "gossip cells need the failure detector enabled",
        )
        bad_backends = sorted(set(self.clock_backends) - set(CLOCK_BACKENDS))
        require(
            not bad_backends,
            f"unknown clock backends {bad_backends}; "
            f"expected a subset of {CLOCK_BACKENDS}",
        )
        require(
            all(p >= 1 for p in self.n_predicates),
            "n_predicates entries must be >= 1",
        )
        require(
            self._raw_num_cells <= MAX_CELLS,
            f"matrix expands to {self._raw_num_cells} cells before "
            f"exclusions; limit is {MAX_CELLS}",
        )

    def _membership_variants(
        self, detector: str
    ) -> tuple[tuple[str, int, float | None, float | None], ...]:
        """The ``(membership, fanout, interval, timeout)`` variants one
        detector expands over.

        The fanout/interval/timeout axes only multiply gossip cells;
        heartbeat mode has none of those knobs so it contributes a
        single variant.  Detectors without a hardened variant run
        fault-free reference code and stay on the (inert) heartbeat
        default.
        """
        if detector not in FAULT_CAPABLE:
            return (("heartbeat", 3, None, None),)
        variants: list[tuple[str, int, float | None, float | None]] = []
        for mode in self.membership:
            if mode == "gossip":
                variants.extend(
                    ("gossip", f, gi, gt)
                    for f in self.gossip_fanouts
                    for gi in self.gossip_intervals
                    for gt in self.gossip_timeouts
                )
            else:
                variants.append(("heartbeat", 3, None, None))
        return tuple(variants)

    def _backend_variants(self, detector: str) -> tuple[str, ...]:
        """The clock backends one detector expands over.

        Offline detectors analyze the trace directly (no snapshot
        extraction), so the backend axis collapses to the list default
        for them — mirroring how fault specs only pair with
        fault-capable detectors.
        """
        if detector not in online_detectors():
            return ("list",)
        return self.clock_backends

    def _predicate_variants(self, detector: str) -> tuple[int, ...]:
        """The predicate counts one detector expands over.

        Only multiplexed detectors share a service run across
        predicates, so the axis multiplies those alone; other detectors
        contribute their ordinary single-predicate cells.  (Amortized
        multi-predicate runs remain reachable through
        :func:`repro.detect.runner.run_service` and the scale benchmark
        — the sweep axis measures the shared-stream path.)
        """
        if detector not in MUX_DETECTORS:
            return (1,)
        return self.n_predicates

    def _excluded(self, cell: SweepCell) -> bool:
        """Whether an ``exclude`` entry matches every named cell field."""
        if not self.exclude:
            return False
        desc = cell.to_dict()
        return any(
            all(desc[key] == value for key, value in entry.items())
            for entry in self.exclude
        )

    @property
    def num_cells(self) -> int:
        """The number of cells ``cells()`` will expand to."""
        if self.exclude:
            return len(self.cells())
        return self._raw_num_cells

    @property
    def _raw_num_cells(self) -> int:
        """The cross-product size before ``exclude`` filtering."""
        count = 0
        for detector in self.detectors:
            fault_variants = len(self.faults) if detector in FAULT_CAPABLE else 1
            count += (
                len(self.processes)
                * len(self.sends)
                * len(self.patterns)
                * len(self.densities)
                * len(self.pred_widths)
                * len(self.seeds)
                * fault_variants
                * len(self._membership_variants(detector))
                * len(self._backend_variants(detector))
                * len(self._predicate_variants(detector))
            )
        return count

    def cells(self) -> list[SweepCell]:
        """Expand the cross-product in a deterministic order."""
        out: list[SweepCell] = []
        for detector in self.detectors:
            fault_specs: tuple[str | None, ...] = (
                self.faults if detector in FAULT_CAPABLE else (None,)
            )
            points = itertools.product(
                self.processes,
                self.sends,
                self.patterns,
                self.densities,
                self.pred_widths,
                fault_specs,
                self._membership_variants(detector),
                self._backend_variants(detector),
                self._predicate_variants(detector),
                self.seeds,
            )
            for (
                n,
                sends,
                pattern,
                density,
                width,
                spec,
                mem,
                backend,
                preds,
                seed,
            ) in points:
                if width is not None and width > n:
                    raise ConfigurationError(
                        f"pred_width {width} exceeds processes {n} "
                        f"in matrix {self.name!r}"
                    )
                membership, fanout, interval, timeout = mem
                cell = SweepCell(
                    detector=detector,
                    num_processes=n,
                    sends_per_process=sends,
                    pattern=pattern,
                    predicate_density=density,
                    pred_width=width,
                    plant_final_cut=self.plant_final_cut,
                    internal_rate=self.internal_rate,
                    seed=seed,
                    faults=spec,
                    self_heal=self.self_heal and detector in FAULT_CAPABLE,
                    membership=membership,
                    gossip_fanout=fanout,
                    gossip_interval=interval,
                    gossip_timeout=timeout,
                    check_invariants=(
                        self.check_invariants
                        and detector in online_detectors()
                    ),
                    clock_backend=backend,
                    n_predicates=preds,
                )
                if not self._excluded(cell):
                    out.append(cell)
        return out

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready description that :meth:`from_dict` round-trips."""
        return {
            "name": self.name,
            "detectors": list(self.detectors),
            "processes": list(self.processes),
            "sends": list(self.sends),
            "patterns": list(self.patterns),
            "densities": list(self.densities),
            "pred_widths": list(self.pred_widths),
            "seeds": list(self.seeds),
            "faults": list(self.faults),
            "plant_final_cut": self.plant_final_cut,
            "internal_rate": self.internal_rate,
            "self_heal": self.self_heal,
            "membership": list(self.membership),
            "gossip_fanouts": list(self.gossip_fanouts),
            "gossip_intervals": list(self.gossip_intervals),
            "gossip_timeouts": list(self.gossip_timeouts),
            "check_invariants": self.check_invariants,
            "clock_backends": list(self.clock_backends),
            "n_predicates": list(self.n_predicates),
            "exclude": [dict(entry) for entry in self.exclude],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepMatrix":
        """Build a matrix from a JSON document (inverse of ``to_dict``)."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"matrix document must be a JSON object, got {type(data).__name__}"
            )
        known = {
            "name",
            "detectors",
            "processes",
            "sends",
            "patterns",
            "densities",
            "pred_widths",
            "seeds",
            "faults",
            "plant_final_cut",
            "internal_rate",
            "self_heal",
            "membership",
            "gossip_fanouts",
            "gossip_intervals",
            "gossip_timeouts",
            "check_invariants",
            "clock_backends",
            "n_predicates",
            "exclude",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown matrix keys {unknown}; expected a subset of "
                f"{sorted(known)}"
            )
        for required in ("name", "detectors", "processes", "sends"):
            if required not in data:
                raise ConfigurationError(
                    f"matrix document is missing required key {required!r}"
                )
        kwargs: dict[str, Any] = {
            "name": data["name"],
            "detectors": tuple(data["detectors"]),
            "processes": tuple(data["processes"]),
            "sends": tuple(data["sends"]),
        }
        for key in (
            "patterns",
            "densities",
            "pred_widths",
            "seeds",
            "faults",
            "membership",
            "gossip_fanouts",
            "gossip_intervals",
            "gossip_timeouts",
            "clock_backends",
            "n_predicates",
            "exclude",
        ):
            if key in data:
                kwargs[key] = tuple(data[key])
        for key in (
            "plant_final_cut",
            "internal_rate",
            "self_heal",
            "check_invariants",
        ):
            if key in data:
                kwargs[key] = data[key]
        return cls(**kwargs)


def load_matrix(path: str | pathlib.Path) -> SweepMatrix:
    """Load a matrix description from a JSON file."""
    path = pathlib.Path(path)
    if not path.exists():
        raise ConfigurationError(f"no such matrix file: {path}")
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"matrix file {path} is not JSON: {exc}") from None
    return SweepMatrix.from_dict(data)
