"""Content-addressed on-disk cache for generated workloads.

Crossover sweeps (E3 style) run several detectors over the *same*
generated computation; without a cache every cell regenerates an
identical trace.  The cache keys entries by a SHA-256 of the canonical
:class:`~repro.trace.generators.WorkloadSpec` parameters plus a schema
version, so a key hit is — by construction — the exact computation the
generator would have produced.

Entries are single JSON files written atomically (temp file +
``os.replace``), which makes the cache safe under concurrent sweep
workers: racing writers of the same key produce byte-identical content
and the last rename wins.  Unreadable or mismatched entries are treated
as misses, regenerated and overwritten (the ``corrupt`` counter records
them).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from typing import Any

from repro.common.errors import ReproError
from repro.trace.computation import Computation
from repro.trace.generators import WorkloadSpec, generate
from repro.trace.serialization import dumps, loads

__all__ = ["CACHE_SCHEMA", "WorkloadCache", "default_cache_root"]

#: Bump when the generator or trace serialization changes incompatibly.
CACHE_SCHEMA = "repro-workload-cache/1"

_ENV_VAR = "REPRO_CACHE_DIR"


def default_cache_root() -> pathlib.Path:
    """The workload-cache directory: ``$REPRO_CACHE_DIR`` or a local dir."""
    env = os.environ.get(_ENV_VAR)
    if env:
        return pathlib.Path(env)
    return pathlib.Path(".repro-cache") / "workloads"


def _canonical_spec(spec: WorkloadSpec) -> dict[str, Any]:
    data = dataclasses.asdict(spec)
    if data.get("predicate_pids") is not None:
        data["predicate_pids"] = list(data["predicate_pids"])
    return data


class WorkloadCache:
    """Generate-once storage for :class:`WorkloadSpec` computations."""

    def __init__(self, root: str | pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def key(self, spec: WorkloadSpec) -> str:
        """The content address of ``spec``'s computation."""
        doc = {"schema": CACHE_SCHEMA, "spec": _canonical_spec(spec)}
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def path_for(self, spec: WorkloadSpec) -> pathlib.Path:
        """Where ``spec``'s entry lives (whether or not it exists yet)."""
        return self.root / f"{self.key(spec)}.json"

    def _read(self, path: pathlib.Path, key: str) -> Computation | None:
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
            if doc.get("schema") != CACHE_SCHEMA or doc.get("key") != key:
                raise ValueError("cache entry schema/key mismatch")
            return loads(json.dumps(doc["computation"]))
        except (OSError, ValueError, KeyError, TypeError, ReproError):
            return None

    def _write(
        self,
        path: pathlib.Path,
        key: str,
        spec: WorkloadSpec,
        computation: Computation,
    ) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "spec": _canonical_spec(spec),
            "computation": json.loads(dumps(computation)),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(doc, sort_keys=True) + "\n", encoding="utf-8")
        os.replace(tmp, path)

    def get_or_generate(self, spec: WorkloadSpec) -> Computation:
        """The cached computation for ``spec``, generating on miss.

        A present-but-unreadable entry (truncated write, foreign schema,
        hand-edited JSON) counts as ``corrupt`` *and* ``misses`` and is
        regenerated in place.
        """
        key = self.key(spec)
        path = self.root / f"{key}.json"
        if path.exists():
            computation = self._read(path, key)
            if computation is not None:
                self.hits += 1
                return computation
            self.corrupt += 1
        self.misses += 1
        computation = generate(spec)
        self._write(path, key, spec, computation)
        return computation

    def stats(self) -> dict[str, int]:
        """Counters since construction (corrupt entries also count as
        misses)."""
        return {"hits": self.hits, "misses": self.misses, "corrupt": self.corrupt}
