"""Parallel sweep harness with perf-regression baselines.

The paper's results are *sweeps* — cost curves over (N, m, n) — but the
experiment modules run one workload at a time on one core.  This package
scales that out:

* :mod:`repro.sweep.matrix` — declarative cross-products of
  (detector × workload params × seeds × fault plans) that expand to
  deterministic cell lists;
* :mod:`repro.sweep.cache` — a content-addressed on-disk cache for
  generated workloads, so crossover-style sweeps stop regenerating
  identical traces;
* :mod:`repro.sweep.runner` — multiprocessing fan-out with a streaming
  aggregator folding per-run paper units into ``repro-bench/1`` JSON
  plus per-group median/p95 summaries;
* :mod:`repro.sweep.baseline` — the regression comparator behind
  ``repro bench-check``: paper units must match a committed baseline
  exactly; wall-time medians get a multiplicative tolerance.

Quickstart::

    from repro.sweep import SweepMatrix, run_sweep

    matrix = SweepMatrix(
        name="demo",
        detectors=("token_vc", "direct_dep"),
        processes=(4, 8),
        sends=(8,),
        seeds=(0, 1, 2),
    )
    result = run_sweep(matrix, cache_root="/tmp/repro-cache", workers=4)
    assert result.ok
    aggregate = result.aggregate()  # repro-bench/1 JSON document
"""

from repro.sweep.baseline import (
    DEFAULT_WALL_TOLERANCE,
    BaselineComparison,
    CellDrift,
    WallRegression,
    compare,
    dump_comparisons_markdown,
    load_baseline,
)
from repro.sweep.cache import CACHE_SCHEMA, WorkloadCache, default_cache_root
from repro.sweep.matrix import SweepCell, SweepMatrix, load_matrix
from repro.sweep.runner import SweepResult, run_cell, run_sweep

__all__ = [
    "SweepCell",
    "SweepMatrix",
    "load_matrix",
    "WorkloadCache",
    "CACHE_SCHEMA",
    "default_cache_root",
    "SweepResult",
    "run_cell",
    "run_sweep",
    "BaselineComparison",
    "CellDrift",
    "WallRegression",
    "DEFAULT_WALL_TOLERANCE",
    "compare",
    "load_baseline",
    "dump_comparisons_markdown",
]
