"""Perf-regression baselines: diff a fresh sweep against a committed one.

A baseline is simply a committed sweep aggregate (``repro-bench/1`` JSON
with the ``"sweep"`` extension, written by ``repro sweep --out``).  The
comparator replays nothing itself — ``repro bench-check`` re-runs the
matrix recorded in the baseline's ``params`` and hands both documents
here.

Two classes of check, per the paper's accounting argument:

* **Paper units** (token hops, monitor messages/bits, work, comparisons,
  outcome, ...) are deterministic given the matrix, so *any* change is a
  failure — there is no tolerance on counted quantities.
* **Wall time** is hardware noise, so only the per-group medians are
  checked, against a multiplicative tolerance.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.analysis import render_table
from repro.common.errors import ConfigurationError
from repro.obs.benchjson import load_benchmark_json
from repro.sweep.runner import median

__all__ = [
    "DEFAULT_WALL_TOLERANCE",
    "MIN_COMPARABLE_WALL_S",
    "CellDrift",
    "WallRegression",
    "BaselineComparison",
    "cell_units",
    "group_wall_medians",
    "compare",
    "load_baseline",
    "dump_comparisons_markdown",
]

#: Fresh group wall medians may be at most this multiple of the baseline.
DEFAULT_WALL_TOLERANCE = 5.0

#: Group wall medians below this are too small to compare meaningfully.
MIN_COMPARABLE_WALL_S = 0.005


@dataclass(frozen=True, slots=True)
class CellDrift:
    """One paper-unit metric that changed for one cell."""

    cell_id: str
    unit: str
    baseline: Any
    fresh: Any


@dataclass(frozen=True, slots=True)
class WallRegression:
    """One group whose wall-time median regressed beyond tolerance."""

    group: str
    baseline_s: float
    fresh_s: float

    @property
    def factor(self) -> float:
        return self.fresh_s / self.baseline_s


@dataclass
class BaselineComparison:
    """The verdict of one baseline diff, with renderable detail."""

    baseline_name: str
    checked_cells: int
    tolerance: float
    drifts: list[CellDrift] = field(default_factory=list)
    missing_cells: list[str] = field(default_factory=list)
    unexpected_cells: list[str] = field(default_factory=list)
    wall_regressions: list[WallRegression] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.drifts
            or self.missing_cells
            or self.unexpected_cells
            or self.wall_regressions
        )

    def _rows(self) -> list[list[str]]:
        rows: list[list[str]] = []
        for drift in self.drifts:
            rows.append(
                [
                    drift.cell_id,
                    drift.unit,
                    str(drift.baseline),
                    str(drift.fresh),
                ]
            )
        for cell_id in self.missing_cells:
            rows.append([cell_id, "(cell)", "present", "MISSING"])
        for cell_id in self.unexpected_cells:
            rows.append([cell_id, "(cell)", "absent", "UNEXPECTED"])
        for reg in self.wall_regressions:
            rows.append(
                [
                    reg.group,
                    "med_wall_s",
                    f"{reg.baseline_s:.4f}",
                    f"{reg.fresh_s:.4f} ({reg.factor:.1f}x > "
                    f"{self.tolerance:g}x)",
                ]
            )
        return rows

    def render(self) -> str:
        """A readable diff table (empty-diff runs render a PASS line)."""
        title = f"bench-check {self.baseline_name}"
        if self.ok:
            return (
                f"{title}: PASS ({self.checked_cells} cells, wall "
                f"tolerance {self.tolerance:g}x)"
            )
        table = render_table(
            ["cell", "metric", "baseline", "fresh"], self._rows(), title
        )
        return f"{table}\nbench-check {self.baseline_name}: FAIL"

    def render_markdown(self) -> str:
        """The same diff as GitHub-flavored markdown (job summaries)."""
        status = "✅ PASS" if self.ok else "❌ FAIL"
        lines = [
            f"### bench-check `{self.baseline_name}` — {status}",
            "",
            f"{self.checked_cells} cells checked, wall tolerance "
            f"{self.tolerance:g}x.",
        ]
        if not self.ok:
            lines += [
                "",
                "| cell | metric | baseline | fresh |",
                "| --- | --- | --- | --- |",
            ]
            lines += [
                "| " + " | ".join(cell.replace("|", "\\|") for cell in row) + " |"
                for row in self._rows()
            ]
        lines.append("")
        return "\n".join(lines)


def _sweep_section(doc: Mapping[str, Any], origin: str) -> Mapping[str, Any]:
    sweep = doc.get("sweep")
    if not isinstance(sweep, Mapping) or "cells" not in sweep:
        raise ConfigurationError(
            f"{origin}: not a sweep aggregate (missing the 'sweep' section); "
            f"was it written by 'repro sweep --out'?"
        )
    return sweep


def cell_units(doc: Mapping[str, Any], origin: str = "document") -> dict[str, dict]:
    """Per-cell paper units from a sweep aggregate document."""
    sweep = _sweep_section(doc, origin)
    return {cell["id"]: dict(cell["units"]) for cell in sweep["cells"]}


def group_wall_medians(
    doc: Mapping[str, Any], origin: str = "document"
) -> dict[str, float]:
    """Median wall seconds per group from a sweep aggregate document."""
    sweep = _sweep_section(doc, origin)
    groups: dict[str, list[float]] = {}
    for cell in sweep["cells"]:
        groups.setdefault(cell["group"], []).append(float(cell["wall_s"]))
    return {group: median(walls) for group, walls in sorted(groups.items())}


def load_baseline(path: str | pathlib.Path) -> dict[str, Any]:
    """Load a committed baseline file, validating schema and shape."""
    doc = load_benchmark_json(path)
    _sweep_section(doc, str(path))
    if "params" not in doc or "name" not in doc["params"]:
        raise ConfigurationError(
            f"{path}: baseline carries no matrix under 'params'; cannot replay"
        )
    return doc


def compare(
    baseline_doc: Mapping[str, Any],
    fresh_doc: Mapping[str, Any],
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    name: str | None = None,
) -> BaselineComparison:
    """Diff ``fresh_doc`` against ``baseline_doc``.

    Paper units must match exactly per cell; group wall-time medians may
    grow up to ``wall_tolerance`` times the baseline median (and only
    groups whose baseline median exceeds
    :data:`MIN_COMPARABLE_WALL_S` are checked at all).
    """
    if wall_tolerance <= 0:
        raise ConfigurationError(
            f"wall_tolerance must be positive, got {wall_tolerance}"
        )
    baseline_name = name or str(
        baseline_doc.get("params", {}).get("name", "baseline")
    )
    base_units = cell_units(baseline_doc, "baseline")
    fresh_units = cell_units(fresh_doc, "fresh sweep")
    comparison = BaselineComparison(
        baseline_name=baseline_name,
        checked_cells=len(base_units),
        tolerance=wall_tolerance,
    )
    for cell_id in sorted(base_units):
        if cell_id not in fresh_units:
            comparison.missing_cells.append(cell_id)
            continue
        base = base_units[cell_id]
        fresh = fresh_units[cell_id]
        for unit in sorted(set(base) | set(fresh)):
            before = base.get(unit, "(absent)")
            after = fresh.get(unit, "(absent)")
            if before != after:
                comparison.drifts.append(CellDrift(cell_id, unit, before, after))
    comparison.unexpected_cells.extend(sorted(set(fresh_units) - set(base_units)))
    base_walls = group_wall_medians(baseline_doc, "baseline")
    fresh_walls = group_wall_medians(fresh_doc, "fresh sweep")
    for group, base_median in sorted(base_walls.items()):
        if base_median < MIN_COMPARABLE_WALL_S:
            continue
        fresh_median = fresh_walls.get(group)
        if fresh_median is None:
            continue  # already reported as missing cells
        if fresh_median > wall_tolerance * base_median:
            comparison.wall_regressions.append(
                WallRegression(group, base_median, fresh_median)
            )
    return comparison


def dump_comparisons_markdown(
    comparisons: list[BaselineComparison], path: str | pathlib.Path
) -> None:
    """Append rendered comparisons to ``path`` (``$GITHUB_STEP_SUMMARY``)."""
    text = "\n".join(c.render_markdown() for c in comparisons)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(text + "\n")
