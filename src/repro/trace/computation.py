"""The :class:`Computation`: a validated record of one distributed run.

A computation holds the per-process event sequences and performs the
cross-process validation that individual events cannot:

* every RECV names a message that exactly one SEND produced, with
  consistent sender/receiver endpoints;
* every message is received at most once (lost messages are forbidden by
  the model of §2, so by default every message must be received);
* the induced happened-before relation is acyclic (no causal paradoxes);
* optional event timestamps respect causality (a receive is never
  timestamped before its send).

The heavy per-interval analysis (vector clocks, dependences, candidate
extraction) lives in :mod:`repro.trace.intervals`; the computation only
caches the raw structure plus the message index.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.common.errors import InvalidComputationError
from repro.common.types import Pid
from repro.trace.events import Event, EventKind, ProcessTrace

__all__ = ["MessageRecord", "Computation"]


@dataclass(frozen=True, slots=True)
class MessageRecord:
    """Resolved endpoints of one application message."""

    msg_id: int
    sender: Pid
    send_index: int
    receiver: Pid
    recv_index: int


class Computation:
    """An immutable, validated distributed computation.

    Parameters
    ----------
    processes:
        One :class:`ProcessTrace` per process; the list index is the
        process id.
    allow_unreceived:
        If True, SENDs without a matching RECV are permitted (messages
        still in flight when the recorded run ends).  The paper's model
        assumes no message loss, so this defaults to False.
    """

    __slots__ = ("_processes", "_messages", "_local_states", "_analysis")

    def __init__(
        self,
        processes: Sequence[ProcessTrace],
        allow_unreceived: bool = False,
    ) -> None:
        if not processes:
            raise InvalidComputationError("a computation needs at least one process")
        self._processes: tuple[ProcessTrace, ...] = tuple(processes)
        self._messages = self._index_messages(allow_unreceived)
        self._check_acyclic()
        self._check_times()
        self._local_states: tuple[tuple[Mapping[str, object], ...], ...] | None = None
        self._analysis: dict[str, object] = {}

    def analysis(self, clock_backend: str = "list"):
        """The lazily computed, cached :class:`IntervalAnalysis` of this run.

        One analysis is cached per ``clock_backend`` (``"list"`` or
        ``"packed"``); both produce bit-identical interval structure and
        differ only in vector-clock representation.
        """
        cached = self._analysis.get(clock_backend)
        if cached is None:
            from repro.trace.intervals import IntervalAnalysis

            cached = IntervalAnalysis(self, clock_backend=clock_backend)
            self._analysis[clock_backend] = cached
        return cached

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_processes(self) -> int:
        """The paper's ``N``: total number of processes in the system."""
        return len(self._processes)

    @property
    def processes(self) -> tuple[ProcessTrace, ...]:
        """The per-process traces."""
        return self._processes

    @property
    def messages(self) -> Mapping[int, MessageRecord]:
        """Message id -> resolved endpoints, for every received message."""
        return self._messages

    def events_of(self, pid: Pid) -> tuple[Event, ...]:
        """The event sequence of process ``pid``."""
        self._check_pid(pid)
        return self._processes[pid].events

    def event(self, pid: Pid, index: int) -> Event:
        """The ``index``-th event of process ``pid``."""
        return self.events_of(pid)[index]

    def max_messages_per_process(self) -> int:
        """The paper's ``m``: max messages sent or received by any process."""
        return max(p.communication_count for p in self._processes)

    def total_events(self) -> int:
        """Total number of events across all processes."""
        return sum(len(p) for p in self._processes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Computation(N={self.num_processes}, events={self.total_events()}, "
            f"messages={len(self._messages)})"
        )

    # ------------------------------------------------------------------
    # Local states
    # ------------------------------------------------------------------
    def local_states(self, pid: Pid) -> tuple[Mapping[str, object], ...]:
        """All local states of ``pid``: the initial state followed by the
        post-state of every event (length ``len(events)+1``)."""
        if self._local_states is None:
            self._local_states = tuple(
                self._accumulate_states(p) for p in self._processes
            )
        self._check_pid(pid)
        return self._local_states[pid]

    @staticmethod
    def _accumulate_states(
        trace: ProcessTrace,
    ) -> tuple[Mapping[str, object], ...]:
        states: list[Mapping[str, object]] = [dict(trace.initial_vars)]
        current = dict(trace.initial_vars)
        for event in trace.events:
            if event.updates:
                current = dict(current)
                current.update(event.updates)
            states.append(current)
        return tuple(states)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _index_messages(self, allow_unreceived: bool) -> dict[int, MessageRecord]:
        sends: dict[int, tuple[Pid, int, Pid]] = {}
        recvs: dict[int, tuple[Pid, int, Pid]] = {}
        for pid, trace in enumerate(self._processes):
            for idx, event in enumerate(trace.events):
                if event.kind is EventKind.SEND:
                    assert event.msg_id is not None and event.peer is not None
                    if event.msg_id in sends:
                        raise InvalidComputationError(
                            f"message {event.msg_id} sent twice"
                        )
                    if event.peer == pid:
                        raise InvalidComputationError(
                            f"P{pid} sends message {event.msg_id} to itself"
                        )
                    if not 0 <= event.peer < len(self._processes):
                        raise InvalidComputationError(
                            f"send m{event.msg_id}: destination P{event.peer} "
                            f"does not exist"
                        )
                    sends[event.msg_id] = (pid, idx, event.peer)
                elif event.kind is EventKind.RECV:
                    assert event.msg_id is not None and event.peer is not None
                    if event.msg_id in recvs:
                        raise InvalidComputationError(
                            f"message {event.msg_id} received twice"
                        )
                    recvs[event.msg_id] = (pid, idx, event.peer)

        messages: dict[int, MessageRecord] = {}
        for msg_id, (receiver, recv_index, claimed_sender) in recvs.items():
            if msg_id not in sends:
                raise InvalidComputationError(
                    f"message {msg_id} received but never sent"
                )
            sender, send_index, dest = sends[msg_id]
            if dest != receiver:
                raise InvalidComputationError(
                    f"message {msg_id} sent to P{dest} but received by P{receiver}"
                )
            if claimed_sender != sender:
                raise InvalidComputationError(
                    f"message {msg_id} recv names sender P{claimed_sender}, "
                    f"actual sender P{sender}"
                )
            messages[msg_id] = MessageRecord(
                msg_id, sender, send_index, receiver, recv_index
            )
        if not allow_unreceived:
            missing = set(sends) - set(recvs)
            if missing:
                raise InvalidComputationError(
                    f"messages sent but never received: {sorted(missing)} "
                    f"(pass allow_unreceived=True to permit in-flight messages)"
                )
        return messages

    def _check_acyclic(self) -> None:
        """Kahn's algorithm over process-order + message edges."""
        # Node key: (pid, event_index).  Edges: (pid,k) -> (pid,k+1) and
        # send -> recv for each message.
        indegree: dict[tuple[int, int], int] = {}
        successors: dict[tuple[int, int], list[tuple[int, int]]] = {}

        def add_edge(a: tuple[int, int], b: tuple[int, int]) -> None:
            successors.setdefault(a, []).append(b)
            indegree[b] = indegree.get(b, 0) + 1
            indegree.setdefault(a, indegree.get(a, 0))

        total = 0
        for pid, trace in enumerate(self._processes):
            total += len(trace.events)
            for idx in range(len(trace.events)):
                indegree.setdefault((pid, idx), 0)
                if idx + 1 < len(trace.events):
                    add_edge((pid, idx), (pid, idx + 1))
        for record in self._messages.values():
            add_edge(
                (record.sender, record.send_index),
                (record.receiver, record.recv_index),
            )

        ready = deque(node for node, deg in indegree.items() if deg == 0)
        visited = 0
        while ready:
            node = ready.popleft()
            visited += 1
            for succ in successors.get(node, ()):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if visited != total:
            raise InvalidComputationError(
                "computation contains a causal cycle (a message is received "
                "before, in happened-before order, it was sent)"
            )

    def _check_times(self) -> None:
        for record in self._messages.values():
            send_time = self._processes[record.sender].events[record.send_index].time
            recv_time = (
                self._processes[record.receiver].events[record.recv_index].time
            )
            if send_time is not None and recv_time is not None:
                if recv_time < send_time:
                    raise InvalidComputationError(
                        f"message {record.msg_id} received at t={recv_time} "
                        f"before sent at t={send_time}"
                    )

    def _check_pid(self, pid: Pid) -> None:
        if not 0 <= pid < len(self._processes):
            raise InvalidComputationError(
                f"pid {pid} out of range (N={len(self._processes)})"
            )

    # ------------------------------------------------------------------
    # Iteration helpers
    # ------------------------------------------------------------------
    def iter_events(self) -> Iterator[tuple[Pid, int, Event]]:
        """Iterate ``(pid, index, event)`` in pid-major order."""
        for pid, trace in enumerate(self._processes):
            for idx, event in enumerate(trace.events):
                yield pid, idx, event

    def topological_order(self) -> list[tuple[Pid, int]]:
        """One linearization of the happened-before relation over events.

        Deterministic: ties are broken by (pid, index).
        """
        import heapq

        indegree: dict[tuple[int, int], int] = {}
        successors: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for pid, trace in enumerate(self._processes):
            for idx in range(len(trace.events)):
                indegree.setdefault((pid, idx), 0)
                if idx + 1 < len(trace.events):
                    successors.setdefault((pid, idx), []).append((pid, idx + 1))
                    indegree[(pid, idx + 1)] = indegree.get((pid, idx + 1), 0) + 1
        for record in self._messages.values():
            successors.setdefault(
                (record.sender, record.send_index), []
            ).append((record.receiver, record.recv_index))
            key = (record.receiver, record.recv_index)
            indegree[key] = indegree.get(key, 0) + 1

        heap = [node for node, deg in indegree.items() if deg == 0]
        heapq.heapify(heap)
        order: list[tuple[Pid, int]] = []
        while heap:
            node = heapq.heappop(heap)
            order.append(node)
            for succ in successors.get(node, ()):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    heapq.heappush(heap, succ)
        return order

    # ------------------------------------------------------------------
    # Convenience construction
    # ------------------------------------------------------------------
    @classmethod
    def from_event_lists(
        cls,
        event_lists: Iterable[Sequence[Event]],
        initial_vars: Sequence[Mapping[str, object]] | None = None,
        allow_unreceived: bool = False,
    ) -> "Computation":
        """Build a computation from raw per-process event sequences."""
        lists = [tuple(events) for events in event_lists]
        if initial_vars is None:
            traces = [ProcessTrace(events) for events in lists]
        else:
            if len(initial_vars) != len(lists):
                raise InvalidComputationError(
                    "initial_vars length must equal number of processes"
                )
            traces = [
                ProcessTrace(events, init)
                for events, init in zip(lists, initial_vars)
            ]
        return cls(traces, allow_unreceived=allow_unreceived)
