"""Workload statistics: quantifying the shape of a computation.

Detection cost depends on more than (N, m): the *concurrency ratio*
(what fraction of interval pairs are concurrent) and the candidate
density drive how much elimination work the algorithms must do.  These
statistics label benchmark workloads and power the average-case study
(experiment E10): a spiral has concurrency ratio near 0 (everything
ordered — maximal elimination), independent pairs sit near 1 (nothing to
eliminate).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import StateRef
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.predicates.evaluator import candidate_intervals
from repro.trace.computation import Computation

__all__ = ["ComputationStats", "compute_stats", "describe"]


@dataclass(frozen=True, slots=True)
class ComputationStats:
    """Summary statistics of one computation (and optionally one WCP)."""

    num_processes: int
    total_events: int
    total_messages: int
    max_messages_per_process: int
    total_intervals: int
    min_intervals: int
    max_intervals: int
    concurrency_ratio: float
    candidate_counts: dict[int, int] | None

    def as_rows(self) -> list[tuple[str, object]]:
        """Key/value rows for table rendering."""
        rows: list[tuple[str, object]] = [
            ("processes (N)", self.num_processes),
            ("events", self.total_events),
            ("messages", self.total_messages),
            ("m = max msgs/process", self.max_messages_per_process),
            ("intervals (total)", self.total_intervals),
            ("intervals (min/max per proc)",
             f"{self.min_intervals}/{self.max_intervals}"),
            ("concurrency ratio", round(self.concurrency_ratio, 3)),
        ]
        if self.candidate_counts is not None:
            rows.append(
                ("candidates per predicate process",
                 dict(sorted(self.candidate_counts.items())))
            )
        return rows


def _concurrency_ratio(computation: Computation) -> float:
    """Fraction of cross-process interval pairs that are concurrent."""
    analysis = computation.analysis()
    n = computation.num_processes
    concurrent = 0
    total = 0
    for i in range(n):
        for j in range(i + 1, n):
            for a in range(1, analysis.num_intervals(i) + 1):
                for b in range(1, analysis.num_intervals(j) + 1):
                    total += 1
                    if analysis.concurrent(StateRef(i, a), StateRef(j, b)):
                        concurrent += 1
    return concurrent / total if total else 1.0


def compute_stats(
    computation: Computation,
    wcp: WeakConjunctivePredicate | None = None,
) -> ComputationStats:
    """Compute summary statistics (O(total_intervals^2) for the ratio)."""
    analysis = computation.analysis()
    n = computation.num_processes
    per_proc = [analysis.num_intervals(p) for p in range(n)]
    candidates = None
    if wcp is not None:
        candidates = {
            pid: len(ivs)
            for pid, ivs in candidate_intervals(computation, wcp).items()
        }
    return ComputationStats(
        num_processes=n,
        total_events=computation.total_events(),
        total_messages=len(computation.messages),
        max_messages_per_process=computation.max_messages_per_process(),
        total_intervals=sum(per_proc),
        min_intervals=min(per_proc),
        max_intervals=max(per_proc),
        concurrency_ratio=_concurrency_ratio(computation),
        candidate_counts=candidates,
    )


def describe(
    computation: Computation,
    wcp: WeakConjunctivePredicate | None = None,
) -> str:
    """A human-readable multi-line summary."""
    stats = compute_stats(computation, wcp)
    return "\n".join(f"{key}: {value}" for key, value in stats.as_rows())
