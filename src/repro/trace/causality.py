"""Event-granularity causality queries.

The detection algorithms work at interval granularity
(:mod:`repro.trace.intervals`); this module provides the finer
event-level happened-before relation used by tests (to cross-check the
interval abstraction against first principles) and by the lattice
baseline's sanity checks.

Event-level clocks use the textbook Fidge–Mattern scheme: every event —
internal, send or receive — increments its own component, and a receive
first merges the sender's clock at the send.
"""

from __future__ import annotations

from repro.clocks.vector import VectorClock
from repro.common.types import Pid
from repro.trace.computation import Computation
from repro.trace.events import EventKind

__all__ = [
    "event_vector_clocks",
    "happened_before_events",
    "concurrent_events",
    "causal_past_sizes",
]


def event_vector_clocks(
    computation: Computation,
) -> list[list[VectorClock]]:
    """Fidge–Mattern clocks for every event, indexed ``[pid][event_index]``.

    ``clock[pid][k][pid] == k + 1`` always holds (components count events).
    """
    n = computation.num_processes
    clocks: list[list[VectorClock]] = [[] for _ in range(n)]
    current = [VectorClock.zero(n) for _ in range(n)]
    send_clocks: dict[int, VectorClock] = {}
    for pid, idx, event in _topological_events(computation):
        if event.kind is EventKind.RECV:
            assert event.msg_id is not None
            current[pid] = current[pid].merged(send_clocks[event.msg_id])
        current[pid] = current[pid].tick(pid)
        if event.kind is EventKind.SEND:
            assert event.msg_id is not None
            send_clocks[event.msg_id] = current[pid]
        clocks[pid].append(current[pid])
    return clocks


def _topological_events(computation: Computation):
    for pid, idx in computation.topological_order():
        yield pid, idx, computation.event(pid, idx)


def happened_before_events(
    computation: Computation,
    a: tuple[Pid, int],
    b: tuple[Pid, int],
    clocks: list[list[VectorClock]] | None = None,
) -> bool:
    """Event-level happened-before: ``(pid, index)`` pairs.

    Pass precomputed ``clocks`` (from :func:`event_vector_clocks`) when
    querying repeatedly.
    """
    if clocks is None:
        clocks = event_vector_clocks(computation)
    (pa, ia), (pb, ib) = a, b
    if pa == pb:
        return ia < ib
    # Fidge–Mattern: a -> b iff a's own component is <= b's view of it.
    return clocks[pa][ia][pa] <= clocks[pb][ib][pa]


def concurrent_events(
    computation: Computation,
    a: tuple[Pid, int],
    b: tuple[Pid, int],
    clocks: list[list[VectorClock]] | None = None,
) -> bool:
    """True iff neither event happened before the other."""
    if clocks is None:
        clocks = event_vector_clocks(computation)
    return not happened_before_events(
        computation, a, b, clocks
    ) and not happened_before_events(computation, b, a, clocks)


def causal_past_sizes(computation: Computation) -> list[list[int]]:
    """For every event, the number of events in its causal past
    (exclusive).  Useful as a workload statistic: dense pasts mean heavy
    cross-process dependence."""
    clocks = event_vector_clocks(computation)
    return [
        [sum(clock.components) - 1 for clock in per_process]
        for per_process in clocks
    ]
