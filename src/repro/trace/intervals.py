"""Interval analysis: the paper's state granularity, computed over a trace.

Fig. 2 of the paper increments the application vector clock *after* every
send and receive, and emits at most one local snapshot per clock value
(``firstflag``).  A clock value therefore names a **communication
interval**: a maximal block of local states with no intervening
communication event.  All detection algorithms in the paper operate at
this granularity, and so does this library.

For a process with events ``e_0 .. e_{T-1}`` the local states are
``s_0`` (initial) through ``s_T`` (post-state of ``e_{T-1}``).  State
``s_t`` belongs to interval ``1 + #comm(e_0..e_{t-1})``.  Consequences:

* a SEND is the last event of the interval it is tagged with (the tag is
  taken before the clock increments);
* a RECV's post-state opens a new interval whose vector has absorbed the
  sender's tag;
* every interval contains at least one local state.

:class:`IntervalAnalysis` computes, in one topological sweep:

* the interval index of every local state,
* the full-width (N-component) vector clock of every interval,
* the scalar interval tag carried by every message (§4.1 counters),
* the direct dependences recorded at every receive (§4.1),

and answers happened-before queries between interval states using the
paper's vector-clock properties.
"""

from __future__ import annotations

from array import array
from typing import Sequence

from repro.clocks.dependence import Dependence
from repro.clocks.vector import (
    PackedVectorClock,
    VectorClock,
    require_clock_backend,
)
from repro.common.errors import CutError
from repro.common.types import Pid, StateRef
from repro.trace.computation import Computation
from repro.trace.events import EventKind

__all__ = ["IntervalAnalysis"]


class IntervalAnalysis:
    """Cached per-interval causal structure of a :class:`Computation`.

    Construction is ``O(E * N)`` where ``E`` is the total event count.
    Prefer :meth:`Computation.analysis` (lazily cached) over constructing
    this directly when repeated queries are needed.

    ``clock_backend`` selects the vector-clock representation the sweep
    builds: ``"list"`` (the default, immutable
    :class:`~repro.clocks.vector.VectorClock` per interval) or
    ``"packed"`` (:class:`~repro.clocks.vector.PackedVectorClock` over
    one in-place ``array('q')`` working buffer per process).  The two
    backends produce bit-identical interval vectors, send tags and
    dependences; packed construction allocates O(1) objects per
    communication event instead of O(1) validated clocks per tick *and*
    merge, which is what makes n >= 256 cells tractable.
    """

    def __init__(
        self, computation: Computation, clock_backend: str = "list"
    ) -> None:
        self._computation = computation
        self._clock_backend = require_clock_backend(clock_backend)
        n = computation.num_processes
        # Per process: interval index of each local state s_0..s_T.
        self._state_intervals: list[list[int]] = []
        for pid in range(n):
            events = computation.events_of(pid)
            intervals = [1]
            current = 1
            for event in events:
                if event.kind.is_communication:
                    current += 1
                intervals.append(current)
            self._state_intervals.append(intervals)
        # Per process: number of intervals = 1 + #comm events.
        self._num_intervals = [
            1 + computation.processes[pid].communication_count for pid in range(n)
        ]
        self._vectors: list[list[VectorClock] | list[PackedVectorClock]] = [
            [] for _ in range(n)
        ]
        self._send_tags: dict[int, int] = {}
        self._recv_deps: list[list[tuple[int, Dependence]]] = [[] for _ in range(n)]
        if self._clock_backend == "packed":
            self._sweep_packed()
        else:
            self._sweep()

    # ------------------------------------------------------------------
    # Construction sweep
    # ------------------------------------------------------------------
    def _sweep(self) -> None:
        comp = self._computation
        n = comp.num_processes
        current_vec = [VectorClock.initial(pid, n) for pid in range(n)]
        # Message id -> sender's full vector at the send (the Fig. 2 tag).
        tag_vectors: dict[int, VectorClock] = {}
        for pid, idx in comp.topological_order():
            event = comp.event(pid, idx)
            if event.kind is EventKind.INTERNAL:
                continue
            # The vector held during the interval this comm event closes.
            self._vectors[pid].append(current_vec[pid])
            if event.kind is EventKind.SEND:
                assert event.msg_id is not None
                tag_vectors[event.msg_id] = current_vec[pid]
                self._send_tags[event.msg_id] = current_vec[pid][pid]
                current_vec[pid] = current_vec[pid].tick(pid)
            else:  # RECV
                assert event.msg_id is not None and event.peer is not None
                tag = tag_vectors[event.msg_id]
                self._recv_deps[pid].append(
                    (idx, Dependence(event.peer, tag[event.peer]))
                )
                current_vec[pid] = current_vec[pid].merged(tag).tick(pid)
        # The final (open) interval of every process.
        for pid in range(n):
            self._vectors[pid].append(current_vec[pid])
            assert len(self._vectors[pid]) == self._num_intervals[pid]

    def _sweep_packed(self) -> None:
        """The packed fast path: same sweep, zero clock-object churn.

        One owned ``array('q')`` working buffer per process is mutated
        in place (O(1) tick, single-pass merge); the per-interval frozen
        snapshot is a C-level buffer copy adopted without re-validation.

        Scheduling differs from :meth:`_sweep` but the *values* cannot:
        interval vectors, send tags and dependences are determined by
        the causal structure alone (vector-clock merge is confluent), so
        instead of a global heap-ordered linearization this sweep runs
        each process's event list straight through, parking a process
        that reaches a receive whose tag is not yet known and waking it
        when the matching send executes — ``O(E)`` total, no
        ``topological_order()`` heap and no per-event double indexing.
        Bit-identical results are pinned by the parity suite in
        ``tests/integration``.
        """
        comp = self._computation
        n = comp.num_processes
        zero = bytes(8 * n)
        current: list[array] = []
        for pid in range(n):
            buf = array("q", zero)
            buf[pid] = 1
            current.append(buf)
        events = [comp.events_of(pid) for pid in range(n)]
        counts = [len(events[pid]) for pid in range(n)]
        vectors = self._vectors
        send_tags = self._send_tags
        recv_deps = self._recv_deps
        trusted = PackedVectorClock._trusted
        internal = EventKind.INTERNAL
        send_kind = EventKind.SEND
        # Message id -> the frozen snapshot of the sender's vector at
        # the send (shared with the closing interval's stored vector, so
        # tags carry no extra copies).
        tag_vectors: dict[int, PackedVectorClock] = {}
        # Message id -> the pid parked waiting for that send's tag.
        blocked_on: dict[int, int] = {}
        ptr = [0] * n
        ready = list(range(n))
        while ready:
            pid = ready.pop()
            events_p = events[pid]
            count = counts[pid]
            buf = current[pid]
            vectors_p = vectors[pid]
            deps_p = recv_deps[pid]
            i = ptr[pid]
            while i < count:
                event = events_p[i]
                kind = event.kind
                if kind is internal:
                    i += 1
                    continue
                if kind is send_kind:
                    snap = trusted(array("q", buf))
                    vectors_p.append(snap)
                    mid = event.msg_id
                    tag_vectors[mid] = snap
                    send_tags[mid] = buf[pid]
                    waiter = blocked_on.pop(mid, None)
                    if waiter is not None:
                        ready.append(waiter)
                else:  # RECV
                    mid = event.msg_id
                    tag = tag_vectors.get(mid)
                    if tag is None:
                        blocked_on[mid] = pid
                        break
                    snap = trusted(array("q", buf))
                    vectors_p.append(snap)
                    tag_buf = tag._buf
                    deps_p.append(
                        (i, Dependence(event.peer, tag_buf[event.peer]))
                    )
                    for k, v in enumerate(tag_buf):
                        if v > buf[k]:
                            buf[k] = v
                buf[pid] += 1
                i += 1
            ptr[pid] = i
        # Acyclicity (validated at Computation construction) guarantees
        # every parked process was eventually woken and ran to the end.
        assert ptr == counts
        # The final (open) interval of every process.
        for pid in range(n):
            vectors[pid].append(trusted(array("q", current[pid])))
            assert len(vectors[pid]) == self._num_intervals[pid]

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    @property
    def computation(self) -> Computation:
        """The analyzed computation."""
        return self._computation

    @property
    def clock_backend(self) -> str:
        """The vector-clock representation this analysis was built with."""
        return self._clock_backend

    def num_intervals(self, pid: Pid) -> int:
        """Number of communication intervals on process ``pid``."""
        return self._num_intervals[pid]

    def interval_of_state(self, pid: Pid, state_index: int) -> int:
        """Interval containing local state ``s_{state_index}`` of ``pid``."""
        return self._state_intervals[pid][state_index]

    def states_in_interval(self, pid: Pid, interval: int) -> range:
        """The contiguous range of local-state indices inside ``interval``."""
        self._check_interval(pid, interval)
        intervals = self._state_intervals[pid]
        # Intervals are 1-based and contiguous over a sorted list; binary
        # search would work, but interval counts are small enough that a
        # cached linear index is not worth the complexity here.
        import bisect

        lo = bisect.bisect_left(intervals, interval)
        hi = bisect.bisect_right(intervals, interval)
        return range(lo, hi)

    def vector(self, pid: Pid, interval: int) -> VectorClock | PackedVectorClock:
        """The full-width vector clock of interval ``(pid, interval)``.

        Width is ``N``; detection algorithms over a predicate subset
        project it with :meth:`projected_vector`.  The concrete class
        follows :attr:`clock_backend`; both expose the same interface
        and identical component values.
        """
        self._check_interval(pid, interval)
        return self._vectors[pid][interval - 1]

    def projected_vector(
        self, pid: Pid, interval: int, pids: Sequence[Pid]
    ) -> tuple[int, ...]:
        """The vector of ``(pid, interval)`` restricted to ``pids``.

        This models the width-``n`` clock the paper's §3 application
        processes would carry when the predicate names only ``n`` of the
        ``N`` processes (the other processes still forward the clock).
        """
        return self.vector(pid, interval).project(pids)

    def send_tag(self, msg_id: int) -> int:
        """The scalar interval counter attached to message ``msg_id`` (§4.1)."""
        return self._send_tags[msg_id]

    def receive_dependences(self, pid: Pid) -> tuple[tuple[int, Dependence], ...]:
        """All ``(recv_event_index, dependence)`` pairs recorded by ``pid``,
        in receive order (§4.1's dependence list before any flush)."""
        return tuple(self._recv_deps[pid])

    # ------------------------------------------------------------------
    # Happened-before at interval granularity
    # ------------------------------------------------------------------
    def happened_before(self, a: StateRef, b: StateRef) -> bool:
        """Paper property 1 specialized to interval states.

        For states on the same process this is local order; across
        processes, ``(i, x) -> (j, y)`` iff ``x <= vector(j, y)[i]``.
        """
        self._check_interval(a.pid, a.interval)
        self._check_interval(b.pid, b.interval)
        if a.pid == b.pid:
            return a.interval < b.interval
        return a.interval <= self.vector(b.pid, b.interval)[a.pid]

    def concurrent(self, a: StateRef, b: StateRef) -> bool:
        """True iff neither interval state happened before the other."""
        if a == b:
            return False
        return not self.happened_before(a, b) and not self.happened_before(b, a)

    def directly_precedes(self, a: StateRef, b: StateRef) -> bool:
        """The §4 direct-dependence relation ``a ->_d b``.

        True iff ``a`` and ``b`` are on the same process with ``a`` first,
        or a single message sent at-or-after ``a`` was received at-or-
        before ``b``.  At interval granularity: some message whose send
        closed interval ``x >= a.interval`` on ``a.pid`` was received by
        ``b.pid`` with the receive opening an interval ``<= b.interval``.
        """
        if a.pid == b.pid:
            return a.interval < b.interval
        self._check_interval(a.pid, a.interval)
        self._check_interval(b.pid, b.interval)
        for recv_idx, dep in self._recv_deps[b.pid]:
            if dep.source != a.pid or dep.clock < a.interval:
                continue
            opened = self._state_intervals[b.pid][recv_idx + 1]
            if opened <= b.interval:
                return True
        return False

    # ------------------------------------------------------------------
    # Internal checks
    # ------------------------------------------------------------------
    def _check_interval(self, pid: Pid, interval: int) -> None:
        if not 0 <= pid < self._computation.num_processes:
            raise CutError(
                f"pid {pid} out of range (N={self._computation.num_processes})"
            )
        if not 1 <= interval <= self._num_intervals[pid]:
            raise CutError(
                f"interval {interval} out of range for P{pid} "
                f"(has {self._num_intervals[pid]})"
            )
