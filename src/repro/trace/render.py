"""ASCII space-time diagrams of computations and detected cuts.

Distributed-debugging output people can read: one line per process,
events in a causally consistent global order, message endpoints
labelled, candidate emission points marked, and — when a detected cut is
supplied — the cut's frontier drawn through the run::

    P0  ─o──s0────────────|─r1─
    P1  ────────r0──s1──|──────
        candidates: ^ under emission events

Rendering rules:

* columns follow one deterministic topological order of all events, so
  a message's send is always left of its receive;
* ``o`` marks an internal event, ``s<k>``/``r<k>`` the send/receive of
  message ``k``;
* with a WCP, a marker line under each predicate process carries ``^``
  below the event that triggered each snapshot emission (the Fig. 2
  ``firstflag`` points);
* with a cut, ``|`` is drawn immediately after the last event whose
  post-state lies inside the cut on that process.
"""

from __future__ import annotations

from repro.common.errors import CutError
from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.trace.computation import Computation
from repro.trace.cuts import Cut
from repro.trace.snapshots import emission_points

__all__ = ["render_spacetime"]

_FILL = "─"


def _event_label(event) -> str:
    if event.kind.name == "INTERNAL":
        return "o"
    prefix = "s" if event.kind.name == "SEND" else "r"
    return f"{prefix}{event.msg_id}"


def render_spacetime(
    computation: Computation,
    wcp: WeakConjunctivePredicate | None = None,
    cut: Cut | None = None,
) -> str:
    """Render the computation as an ASCII space-time diagram.

    ``cut`` (if given) must range over a subset of the computation's
    processes and use valid interval indices.
    """
    order = computation.topological_order()
    col_of = {node: k for k, node in enumerate(order)}
    labels = [
        _event_label(computation.event(pid, idx)) for pid, idx in order
    ]
    col_width = max((len(label) for label in labels), default=1) + 2

    analysis = computation.analysis()
    cut_map = {}
    if cut is not None:
        for pid in cut.pids:
            interval = cut.component(pid)
            if not 1 <= interval <= analysis.num_intervals(pid):
                raise CutError(
                    f"cut interval {interval} invalid for P{pid} "
                    f"(has {analysis.num_intervals(pid)})"
                )
            cut_map[pid] = interval

    name_width = max(len(f"P{pid}") for pid in range(computation.num_processes))
    lines: list[str] = []
    for pid in range(computation.num_processes):
        cells: list[str] = []
        marks: list[str] = []
        events = computation.events_of(pid)
        # Which column ends the cut on this process (None = after start
        # only, i.e. before every event of interval >= 2... handled via
        # boundary = -1 meaning the cut bar goes right after the name).
        boundary_col = None
        if pid in cut_map:
            boundary_col = -1
            for idx, event in enumerate(events):
                post_interval = analysis.interval_of_state(pid, idx + 1)
                if post_interval <= cut_map[pid]:
                    boundary_col = col_of[(pid, idx)]
        emission_cols = set()
        emit_at_start = False
        if wcp is not None and pid in wcp.pids:
            for _interval, state_index in emission_points(
                computation, pid, wcp.clause(pid)
            ):
                if state_index == 0:
                    emit_at_start = True
                else:
                    emission_cols.add(col_of[(pid, state_index - 1)])
        for col, node in enumerate(order):
            node_pid, node_idx = node
            if node_pid == pid:
                label = _event_label(events[node_idx])
                cell = label.center(col_width, _FILL)
            else:
                cell = _FILL * col_width
            if boundary_col is not None and col == boundary_col:
                cell = cell[:-1] + "|"
            cells.append(cell)
            marks.append(
                ("^".center(col_width) if col in emission_cols else " " * col_width)
            )
        prefix = f"P{pid}".ljust(name_width) + "  "
        start_bar = "|" if boundary_col == -1 else _FILL
        start_mark = "^" if emit_at_start else " "
        lines.append(prefix + start_bar + "".join(cells))
        if wcp is not None and pid in wcp.pids and (emission_cols or emit_at_start):
            lines.append(" " * len(prefix) + start_mark + "".join(marks))

    legend = [
        f"m{rec.msg_id}: P{rec.sender} -> P{rec.receiver}"
        for rec in sorted(computation.messages.values(), key=lambda r: r.msg_id)
    ]
    if legend:
        lines.append("messages: " + ", ".join(legend))
    if cut is not None:
        lines.append(f"cut: {cut}")
    return "\n".join(lines)
