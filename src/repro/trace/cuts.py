"""Global cuts over interval states.

A :class:`Cut` assigns one interval index to each process in a chosen
process set (the paper's candidate cut ``G``).  Components use the paper's
convention: interval indices are 1-based, and ``0`` (:data:`~repro.common.
types.NO_STATE`) means "no state chosen yet" — such a cut is *partial*.

Consistency (§2): a complete cut is consistent iff its states are
pairwise concurrent under happened-before.  Partial cuts are never
consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.common.errors import CutError
from repro.common.types import NO_STATE, IntervalIndex, Pid, StateRef
from repro.trace.intervals import IntervalAnalysis

__all__ = ["Cut", "is_consistent_cut", "first_inconsistency"]


@dataclass(frozen=True, slots=True)
class Cut:
    """An assignment of interval indices to a fixed, ordered process set.

    ``pids[k]`` is the process holding component ``intervals[k]``.  The
    ordering of ``pids`` is significant only for positional access; value
    semantics (equality, hashing) are positional as well, so always build
    cuts over the same pid ordering when comparing them.
    """

    pids: tuple[Pid, ...]
    intervals: tuple[IntervalIndex, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "pids", tuple(self.pids))
        object.__setattr__(self, "intervals", tuple(self.intervals))
        if len(self.pids) != len(self.intervals):
            raise CutError(
                f"cut has {len(self.pids)} pids but {len(self.intervals)} components"
            )
        if len(set(self.pids)) != len(self.pids):
            raise CutError(f"duplicate pids in cut: {self.pids}")
        if any(i < 0 for i in self.intervals):
            raise CutError(f"cut components must be >= 0: {self.intervals}")

    # ------------------------------------------------------------------
    @classmethod
    def initial(cls, pids: Sequence[Pid]) -> "Cut":
        """The paper's initial candidate cut: every component is 0."""
        pids = tuple(pids)
        return cls(pids, (NO_STATE,) * len(pids))

    @classmethod
    def from_mapping(cls, mapping: Mapping[Pid, IntervalIndex]) -> "Cut":
        """Build a cut from a pid -> interval mapping (pids sorted)."""
        pids = tuple(sorted(mapping))
        return cls(pids, tuple(mapping[p] for p in pids))

    # ------------------------------------------------------------------
    @property
    def is_complete(self) -> bool:
        """True iff every component names a real state (> 0)."""
        return all(i != NO_STATE for i in self.intervals)

    def component(self, pid: Pid) -> IntervalIndex:
        """The interval chosen for ``pid``."""
        try:
            return self.intervals[self.pids.index(pid)]
        except ValueError:
            raise CutError(f"pid {pid} not in cut over {self.pids}") from None

    def states(self) -> Iterator[StateRef]:
        """Iterate the chosen states, skipping unset (0) components."""
        for pid, interval in zip(self.pids, self.intervals):
            if interval != NO_STATE:
                yield StateRef(pid, interval)

    def replaced(self, pid: Pid, interval: IntervalIndex) -> "Cut":
        """A copy with ``pid``'s component set to ``interval``."""
        try:
            k = self.pids.index(pid)
        except ValueError:
            raise CutError(f"pid {pid} not in cut over {self.pids}") from None
        comps = list(self.intervals)
        comps[k] = interval
        return Cut(self.pids, tuple(comps))

    def project(self, pids: Sequence[Pid]) -> "Cut":
        """Restrict the cut to a subset of its processes."""
        return Cut(tuple(pids), tuple(self.component(p) for p in pids))

    def as_mapping(self) -> dict[Pid, IntervalIndex]:
        """The cut as a pid -> interval dictionary."""
        return dict(zip(self.pids, self.intervals))

    # ------------------------------------------------------------------
    def dominates(self, other: "Cut") -> bool:
        """Componentwise >= over the same pid ordering."""
        self._check_same_pids(other)
        return all(a >= b for a, b in zip(self.intervals, other.intervals))

    def _check_same_pids(self, other: "Cut") -> None:
        if self.pids != other.pids:
            raise CutError(
                f"cuts range over different processes: {self.pids} vs {other.pids}"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"P{p}:{i}" for p, i in zip(self.pids, self.intervals)
        )
        return f"Cut[{inner}]"


def first_inconsistency(
    analysis: IntervalAnalysis, cut: Cut
) -> tuple[StateRef, StateRef] | None:
    """Return a witness pair ``(a, b)`` with ``a -> b`` inside the cut,
    or ``None`` if the cut is consistent.

    Partial cuts (any 0 component) are reported as inconsistent with a
    ``CutError`` because "consistent" is undefined for them.
    """
    if not cut.is_complete:
        raise CutError(f"consistency is undefined for partial cut {cut}")
    states = list(cut.states())
    for i, a in enumerate(states):
        for b in states[i + 1 :]:
            if analysis.happened_before(a, b):
                return (a, b)
            if analysis.happened_before(b, a):
                return (b, a)
    return None


def is_consistent_cut(analysis: IntervalAnalysis, cut: Cut) -> bool:
    """True iff the (complete) cut's states are pairwise concurrent."""
    return first_inconsistency(analysis, cut) is None
