"""Trace layer: recorded computations, intervals, cuts, workloads."""

from repro.trace.builder import ComputationBuilder
from repro.trace.computation import Computation, MessageRecord
from repro.trace.cuts import Cut, first_inconsistency, is_consistent_cut
from repro.trace.events import Event, EventKind, ProcessTrace
from repro.trace.generators import (
    FLAG_VAR,
    WorkloadSpec,
    empty_computation,
    generate,
    never_true_computation,
    random_computation,
    ring_computation,
    skewed_concurrent_computation,
    spiral_computation,
    worst_case_computation,
)
from repro.trace.intervals import IntervalAnalysis
from repro.trace.lattice import (
    consistent_successors,
    count_consistent_cuts,
    initial_cut,
    iter_consistent_cuts,
)
from repro.trace.serialization import (
    computation_from_dict,
    computation_to_dict,
    dumps,
    loads,
)
from repro.trace.import_log import format_log, parse_log
from repro.trace.render import render_spacetime
from repro.trace.statistics import ComputationStats, compute_stats, describe
from repro.trace.snapshots import (
    DDSnapshot,
    VCSnapshot,
    dd_snapshots,
    emission_points,
    true_intervals,
    vc_snapshots,
)

__all__ = [
    "Computation",
    "MessageRecord",
    "ComputationBuilder",
    "Event",
    "EventKind",
    "ProcessTrace",
    "IntervalAnalysis",
    "Cut",
    "is_consistent_cut",
    "first_inconsistency",
    "initial_cut",
    "consistent_successors",
    "iter_consistent_cuts",
    "count_consistent_cuts",
    "WorkloadSpec",
    "generate",
    "random_computation",
    "worst_case_computation",
    "never_true_computation",
    "ring_computation",
    "spiral_computation",
    "skewed_concurrent_computation",
    "empty_computation",
    "FLAG_VAR",
    "VCSnapshot",
    "DDSnapshot",
    "vc_snapshots",
    "dd_snapshots",
    "emission_points",
    "true_intervals",
    "computation_to_dict",
    "computation_from_dict",
    "dumps",
    "loads",
    "ComputationStats",
    "compute_stats",
    "describe",
    "render_spacetime",
    "parse_log",
    "format_log",
]
