"""Event model for recorded distributed computations.

A *computation* (§2 of the paper) is a single run of a distributed
program: per process, a totally ordered sequence of events; across
processes, send/receive pairs inducing Lamport's happened-before
relation.  Three event kinds exist:

* ``INTERNAL`` — a local step that may update program variables,
* ``SEND`` — transmit one asynchronous message to a peer process,
* ``RECV`` — consume one previously sent message.

Each event may carry a sparse ``updates`` mapping of program variables
assigned by the event; the *local state* after an event is the initial
variable assignment overlaid with all updates so far.  Local predicates
are evaluated on these local states.

Events are immutable value objects; the containing
:class:`~repro.trace.computation.Computation` performs cross-process
validation (matching of message ids, causal acyclicity).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.common.errors import InvalidComputationError
from repro.common.types import Pid

__all__ = ["EventKind", "Event", "ProcessTrace"]


class EventKind(enum.Enum):
    """The three event kinds of the asynchronous message-passing model."""

    INTERNAL = "internal"
    SEND = "send"
    RECV = "recv"

    @property
    def is_communication(self) -> bool:
        """True for SEND/RECV — the events that end a communication interval."""
        return self is not EventKind.INTERNAL


@dataclass(frozen=True, slots=True)
class Event:
    """One event in a process's local sequence.

    Parameters
    ----------
    kind:
        The event kind.
    msg_id:
        For SEND/RECV, the globally unique message identifier; ``None``
        for INTERNAL events.
    peer:
        For SEND, the destination process; for RECV, the sender; ``None``
        for INTERNAL events.
    updates:
        Sparse variable assignments applied by this event (may be empty
        for any kind — e.g. a SEND that changes no variables).
    time:
        Optional simulated timestamp used by trace replay.  Not part of
        the causal structure; purely a scheduling hint.
    """

    kind: EventKind
    msg_id: int | None = None
    peer: Pid | None = None
    updates: Mapping[str, object] = field(default_factory=dict)
    time: float | None = None

    def __post_init__(self) -> None:
        if self.kind is EventKind.INTERNAL:
            if self.msg_id is not None or self.peer is not None:
                raise InvalidComputationError(
                    "internal events must not carry msg_id or peer"
                )
        else:
            if self.msg_id is None or self.peer is None:
                raise InvalidComputationError(
                    f"{self.kind.value} events require msg_id and peer"
                )
            if self.msg_id < 0:
                raise InvalidComputationError(
                    f"msg_id must be >= 0, got {self.msg_id}"
                )
            if self.peer < 0:
                raise InvalidComputationError(f"peer must be >= 0, got {self.peer}")
        # Freeze the updates mapping so the dataclass is deeply immutable.
        object.__setattr__(self, "updates", MappingProxyType(dict(self.updates)))

    # Convenience constructors -----------------------------------------
    @classmethod
    def internal(
        cls, updates: Mapping[str, object] | None = None, time: float | None = None
    ) -> "Event":
        """An internal event, optionally updating variables."""
        return cls(EventKind.INTERNAL, updates=updates or {}, time=time)

    @classmethod
    def send(
        cls,
        msg_id: int,
        dest: Pid,
        updates: Mapping[str, object] | None = None,
        time: float | None = None,
    ) -> "Event":
        """A send of message ``msg_id`` to process ``dest``."""
        return cls(EventKind.SEND, msg_id, dest, updates or {}, time)

    @classmethod
    def recv(
        cls,
        msg_id: int,
        src: Pid,
        updates: Mapping[str, object] | None = None,
        time: float | None = None,
    ) -> "Event":
        """A receive of message ``msg_id`` sent by process ``src``."""
        return cls(EventKind.RECV, msg_id, src, updates or {}, time)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind is EventKind.INTERNAL:
            core = "internal"
        else:
            core = f"{self.kind.value} m{self.msg_id} peer=P{self.peer}"
        if self.updates:
            core += f" {dict(self.updates)!r}"
        return f"Event<{core}>"


@dataclass(frozen=True, slots=True)
class ProcessTrace:
    """The local history of one process: initial variables + event sequence."""

    events: tuple[Event, ...]
    initial_vars: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        object.__setattr__(
            self, "initial_vars", MappingProxyType(dict(self.initial_vars))
        )
        times = [e.time for e in self.events if e.time is not None]
        if times != sorted(times):
            raise InvalidComputationError(
                "event timestamps must be nondecreasing within a process"
            )

    def __len__(self) -> int:
        return len(self.events)

    @property
    def communication_count(self) -> int:
        """Number of SEND/RECV events (the paper's per-process message count)."""
        return sum(1 for e in self.events if e.kind.is_communication)
