"""Fluent programmatic construction of computations.

:class:`ComputationBuilder` lets tests and examples write runs down in
program order without bookkeeping message ids by hand::

    b = ComputationBuilder(3)
    b.internal(0, {"cs": True})
    m = b.send(0, 1)          # P0 -> P1
    b.recv(1, m)
    b.internal(1, {"cs": True})
    comp = b.build()

Events are appended per process; the builder assigns globally unique
message ids and, on :meth:`build`, delegates full validation (matching,
acyclicity) to :class:`~repro.trace.computation.Computation`.
"""

from __future__ import annotations

from typing import Mapping

from repro.common.errors import InvalidComputationError
from repro.common.types import Pid
from repro.trace.computation import Computation
from repro.trace.events import Event, ProcessTrace

__all__ = ["ComputationBuilder"]


class ComputationBuilder:
    """Accumulates per-process event lists and builds a :class:`Computation`.

    Parameters
    ----------
    num_processes:
        Total process count ``N``.
    initial_vars:
        Optional initial variable assignment per process (keyed by pid);
        omitted pids start with an empty state.
    """

    def __init__(
        self,
        num_processes: int,
        initial_vars: Mapping[Pid, Mapping[str, object]] | None = None,
    ) -> None:
        if num_processes <= 0:
            raise InvalidComputationError(
                f"num_processes must be positive, got {num_processes}"
            )
        self._n = num_processes
        self._events: list[list[Event]] = [[] for _ in range(num_processes)]
        self._initial: list[dict[str, object]] = [
            dict((initial_vars or {}).get(pid, {})) for pid in range(num_processes)
        ]
        self._next_msg_id = 0
        self._sent_unreceived: dict[int, Pid] = {}

    # ------------------------------------------------------------------
    @property
    def num_processes(self) -> int:
        """The configured process count."""
        return self._n

    def internal(
        self,
        pid: Pid,
        updates: Mapping[str, object] | None = None,
        time: float | None = None,
    ) -> "ComputationBuilder":
        """Append an internal event on ``pid``; returns self for chaining."""
        self._check_pid(pid)
        self._events[pid].append(Event.internal(updates, time))
        return self

    def send(
        self,
        src: Pid,
        dest: Pid,
        updates: Mapping[str, object] | None = None,
        time: float | None = None,
    ) -> int:
        """Append a send from ``src`` to ``dest``; returns the message id."""
        self._check_pid(src)
        self._check_pid(dest)
        if src == dest:
            raise InvalidComputationError(f"P{src} cannot send to itself")
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        self._events[src].append(Event.send(msg_id, dest, updates, time))
        self._sent_unreceived[msg_id] = dest
        return msg_id

    def recv(
        self,
        pid: Pid,
        msg_id: int,
        updates: Mapping[str, object] | None = None,
        time: float | None = None,
    ) -> "ComputationBuilder":
        """Append the receive of ``msg_id`` on ``pid``."""
        self._check_pid(pid)
        dest = self._sent_unreceived.pop(msg_id, None)
        if dest is None:
            raise InvalidComputationError(
                f"message {msg_id} was never sent or is already received"
            )
        if dest != pid:
            # Put it back so the builder state stays usable after the error.
            self._sent_unreceived[msg_id] = dest
            raise InvalidComputationError(
                f"message {msg_id} was addressed to P{dest}, not P{pid}"
            )
        src = self._find_sender(msg_id)
        self._events[pid].append(Event.recv(msg_id, src, updates, time))
        return self

    def message(
        self,
        src: Pid,
        dest: Pid,
        send_updates: Mapping[str, object] | None = None,
        recv_updates: Mapping[str, object] | None = None,
    ) -> int:
        """Convenience: a send immediately followed by its receive."""
        msg_id = self.send(src, dest, send_updates)
        self.recv(dest, msg_id, recv_updates)
        return msg_id

    def set_initial(self, pid: Pid, vars: Mapping[str, object]) -> "ComputationBuilder":
        """Replace the initial variable assignment of ``pid``."""
        self._check_pid(pid)
        self._initial[pid] = dict(vars)
        return self

    # ------------------------------------------------------------------
    def build(self, allow_unreceived: bool = False) -> Computation:
        """Validate and return the computation.

        The builder remains usable afterwards (building is
        non-destructive), which lets tests extend a prefix run.
        """
        traces = [
            ProcessTrace(tuple(events), init)
            for events, init in zip(self._events, self._initial)
        ]
        return Computation(traces, allow_unreceived=allow_unreceived)

    # ------------------------------------------------------------------
    def _find_sender(self, msg_id: int) -> Pid:
        for pid, events in enumerate(self._events):
            for event in events:
                if event.msg_id == msg_id and event.kind.name == "SEND":
                    return pid
        raise InvalidComputationError(f"sender of message {msg_id} not found")

    def _check_pid(self, pid: Pid) -> None:
        if not 0 <= pid < self._n:
            raise InvalidComputationError(
                f"pid {pid} out of range (N={self._n})"
            )
