"""Importing computations from plain-text event logs.

Real systems rarely emit this library's JSON; they emit *logs*.  This
module reads (and writes) a minimal line-oriented format that a shell
one-liner can produce from most structured logs::

    # comments and blank lines are ignored
    init 0 flag=false budget=3
    internal 0 flag=true @0.5
    send 0 m17 1 @1.0
    recv 1 m17 flag=true @2.25
    internal 1 @3.0

Grammar per line (whitespace separated):

* ``init <pid> [key=value ...]`` — initial variables (before any event);
* ``internal <pid> [key=value ...] [@time]``;
* ``send <pid> <msg_id> <dest_pid> [key=value ...] [@time]``;
* ``recv <pid> <msg_id> [key=value ...] [@time]``.

Message ids are arbitrary tokens (``m17``, ``req-4``, …); values are
parsed as JSON scalars when possible (``true``, ``3``, ``1.5``) and kept
as strings otherwise.  Per-process event order is the order of that
process's lines.  The result is fully validated by
:class:`~repro.trace.computation.Computation` (matched messages, causal
acyclicity, time sanity).
"""

from __future__ import annotations

import json

from repro.common.errors import SerializationError
from repro.trace.computation import Computation
from repro.trace.events import Event, EventKind, ProcessTrace

__all__ = ["parse_log", "format_log"]


def _parse_value(token: str) -> object:
    try:
        return json.loads(token)
    except json.JSONDecodeError:
        return token


def _split_fields(tokens: list[str], lineno: int):
    """Split trailing tokens into (updates, time)."""
    updates: dict[str, object] = {}
    time: float | None = None
    for token in tokens:
        if token.startswith("@"):
            if time is not None:
                raise SerializationError(f"line {lineno}: duplicate @time")
            try:
                time = float(token[1:])
            except ValueError:
                raise SerializationError(
                    f"line {lineno}: bad timestamp {token!r}"
                ) from None
        elif "=" in token:
            key, _, raw = token.partition("=")
            if not key:
                raise SerializationError(f"line {lineno}: empty key in {token!r}")
            updates[key] = _parse_value(raw)
        else:
            raise SerializationError(
                f"line {lineno}: unexpected token {token!r} "
                f"(expected key=value or @time)"
            )
    return updates, time


def _parse_pid(token: str, lineno: int) -> int:
    try:
        pid = int(token)
    except ValueError:
        raise SerializationError(
            f"line {lineno}: pid must be an integer, got {token!r}"
        ) from None
    if pid < 0:
        raise SerializationError(f"line {lineno}: pid must be >= 0")
    return pid


def parse_log(text: str, allow_unreceived: bool = False) -> Computation:
    """Parse a text log into a validated :class:`Computation`.

    The process count is ``1 + max pid mentioned``.
    """
    initials: dict[int, dict[str, object]] = {}
    # Raw rows: (pid, kind, msg_token, dest, updates, time)
    rows: list[tuple] = []
    max_pid = -1
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        op = tokens[0].lower()
        if op == "init":
            if len(tokens) < 2:
                raise SerializationError(f"line {lineno}: init needs a pid")
            pid = _parse_pid(tokens[1], lineno)
            updates, time = _split_fields(tokens[2:], lineno)
            if time is not None:
                raise SerializationError(
                    f"line {lineno}: init lines take no @time"
                )
            initials.setdefault(pid, {}).update(updates)
        elif op == "internal":
            if len(tokens) < 2:
                raise SerializationError(f"line {lineno}: internal needs a pid")
            pid = _parse_pid(tokens[1], lineno)
            updates, time = _split_fields(tokens[2:], lineno)
            rows.append((pid, "internal", None, None, updates, time))
        elif op == "send":
            if len(tokens) < 4:
                raise SerializationError(
                    f"line {lineno}: send needs pid, msg id and dest"
                )
            pid = _parse_pid(tokens[1], lineno)
            dest = _parse_pid(tokens[3], lineno)
            updates, time = _split_fields(tokens[4:], lineno)
            rows.append((pid, "send", tokens[2], dest, updates, time))
            max_pid = max(max_pid, dest)
        elif op == "recv":
            if len(tokens) < 3:
                raise SerializationError(
                    f"line {lineno}: recv needs pid and msg id"
                )
            pid = _parse_pid(tokens[1], lineno)
            updates, time = _split_fields(tokens[3:], lineno)
            rows.append((pid, "recv", tokens[2], None, updates, time))
        else:
            raise SerializationError(
                f"line {lineno}: unknown operation {op!r} "
                f"(expected init/internal/send/recv)"
            )
        if op != "init":
            max_pid = max(max_pid, rows[-1][0])
        else:
            max_pid = max(max_pid, pid)
    if max_pid < 0:
        raise SerializationError("log contains no events or init lines")

    # Assign integer message ids to message tokens; resolve senders.
    msg_ids: dict[str, int] = {}
    senders: dict[str, int] = {}
    for pid, kind, token, dest, _updates, _time in rows:
        if kind == "send":
            if token in msg_ids:
                raise SerializationError(f"message {token!r} sent twice")
            msg_ids[token] = len(msg_ids)
            senders[token] = pid
    events: list[list[Event]] = [[] for _ in range(max_pid + 1)]
    for pid, kind, token, dest, updates, time in rows:
        if kind == "internal":
            events[pid].append(Event.internal(updates, time))
        elif kind == "send":
            events[pid].append(
                Event.send(msg_ids[token], dest, updates, time)
            )
        else:
            if token not in msg_ids:
                raise SerializationError(
                    f"message {token!r} received but never sent"
                )
            events[pid].append(
                Event.recv(msg_ids[token], senders[token], updates, time)
            )
    traces = [
        ProcessTrace(tuple(events[pid]), initials.get(pid, {}))
        for pid in range(max_pid + 1)
    ]
    return Computation(traces, allow_unreceived=allow_unreceived)


def format_log(computation: Computation) -> str:
    """Render a computation in the importable text format (round trips
    through :func:`parse_log` up to message-id renaming)."""
    lines: list[str] = []
    for pid, trace in enumerate(computation.processes):
        if trace.initial_vars:
            fields = " ".join(
                f"{k}={json.dumps(v)}" for k, v in sorted(trace.initial_vars.items())
            )
            lines.append(f"init {pid} {fields}")
    for pid, trace in enumerate(computation.processes):
        for event in trace.events:
            parts: list[str]
            if event.kind is EventKind.INTERNAL:
                parts = ["internal", str(pid)]
            elif event.kind is EventKind.SEND:
                parts = ["send", str(pid), f"m{event.msg_id}", str(event.peer)]
            else:
                parts = ["recv", str(pid), f"m{event.msg_id}"]
            for key, value in sorted(event.updates.items()):
                parts.append(f"{key}={json.dumps(value)}")
            if event.time is not None:
                parts.append(f"@{event.time}")
            lines.append(" ".join(parts))
    return "\n".join(lines) + "\n"
