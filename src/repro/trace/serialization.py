"""JSON serialization of computations.

Recorded runs are plain data; persisting them lets benchmark workloads
be archived and examples ship canned traces.  Variable values must be
JSON-representable (the generators only use booleans and numbers).
"""

from __future__ import annotations

import json
from typing import Any

from repro.common.errors import SerializationError
from repro.trace.computation import Computation
from repro.trace.events import Event, EventKind, ProcessTrace

__all__ = ["computation_to_dict", "computation_from_dict", "dumps", "loads"]

_FORMAT_VERSION = 1


def computation_to_dict(computation: Computation) -> dict[str, Any]:
    """Encode a computation as a JSON-compatible dictionary."""
    processes = []
    for trace in computation.processes:
        events = []
        for event in trace.events:
            entry: dict[str, Any] = {"kind": event.kind.value}
            if event.msg_id is not None:
                entry["msg_id"] = event.msg_id
            if event.peer is not None:
                entry["peer"] = event.peer
            if event.updates:
                entry["updates"] = dict(event.updates)
            if event.time is not None:
                entry["time"] = event.time
            events.append(entry)
        processes.append(
            {"initial_vars": dict(trace.initial_vars), "events": events}
        )
    return {"version": _FORMAT_VERSION, "processes": processes}


def computation_from_dict(data: dict[str, Any]) -> Computation:
    """Decode a computation from :func:`computation_to_dict` output.

    Raises :class:`SerializationError` on malformed input; structural
    validation (message matching, acyclicity) is re-run on construction.
    """
    try:
        version = data["version"]
        if version != _FORMAT_VERSION:
            raise SerializationError(f"unsupported format version {version!r}")
        traces = []
        for proc in data["processes"]:
            events = []
            for entry in proc["events"]:
                kind = EventKind(entry["kind"])
                events.append(
                    Event(
                        kind=kind,
                        msg_id=entry.get("msg_id"),
                        peer=entry.get("peer"),
                        updates=entry.get("updates", {}),
                        time=entry.get("time"),
                    )
                )
            traces.append(
                ProcessTrace(tuple(events), proc.get("initial_vars", {}))
            )
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed computation document: {exc}") from exc
    return Computation(traces)


def dumps(computation: Computation, indent: int | None = None) -> str:
    """Serialize a computation to a JSON string."""
    return json.dumps(computation_to_dict(computation), indent=indent)


def loads(text: str) -> Computation:
    """Deserialize a computation from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return computation_from_dict(data)
