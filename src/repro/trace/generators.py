"""Workload generators: synthetic distributed computations.

The paper evaluates algorithms analytically; to *measure* the claimed
complexities we need families of computations with controllable ``N``
(process count), ``m`` (messages per process), communication pattern,
and local-predicate density.  All generators are deterministic given a
seed and produce validated :class:`~repro.trace.computation.Computation`
objects with realistic, causally consistent timestamps for replay.

The flag variable ``"flag"`` carries local-predicate truth: internal
events set it True with probability ``predicate_density``.  With
``plant_final_cut=True`` every predicate process appends a final
flag-raising internal event; because final intervals are always pairwise
concurrent, this guarantees the WCP holds at the very end of the run —
the worst case for detection work when ``predicate_density`` is 0 (every
earlier candidate must be eliminated).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.common.rng import spawn_rng
from repro.common.types import Pid
from repro.common.validation import require, require_positive
from repro.trace.computation import Computation
from repro.trace.events import Event, ProcessTrace

__all__ = [
    "WorkloadSpec",
    "generate",
    "random_computation",
    "worst_case_computation",
    "never_true_computation",
    "ring_computation",
    "spiral_computation",
    "skewed_concurrent_computation",
    "empty_computation",
    "FLAG_VAR",
]

# The variable name generated workloads use for local-predicate truth.
FLAG_VAR = "flag"

_PATTERNS = ("uniform", "ring", "client_server", "pairs")


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Parameters of a synthetic workload.

    Parameters
    ----------
    num_processes:
        Total process count ``N`` (>= 2 so messages are possible).
    sends_per_process:
        Number of messages each process sends.  With the default uniform
        pattern, expected receives per process equal sends, so the
        paper's ``m`` (max messages sent or received per process) is
        close to this value; the exact ``m`` of a generated run is
        available via ``Computation.max_messages_per_process``.
    pattern:
        Destination selection: ``uniform`` (random peer), ``ring`` (next
        process), ``client_server`` (clients talk to a server pool and
        vice versa), ``pairs`` (fixed partner).
    internal_rate:
        Probability of emitting an internal event before each
        communication action; internal events sample the predicate flag.
    predicate_pids:
        Processes carrying a local predicate (default: all).
    predicate_density:
        Probability that an internal event raises the flag.
    plant_final_cut:
        Append a final flag-raising internal event on every predicate
        process, guaranteeing the WCP holds at the final cut.
    seed:
        Seed for all randomness in this workload.
    mean_latency:
        Mean simulated message latency (exponential), used only for the
        timestamp hints that drive replay scheduling.
    """

    num_processes: int
    sends_per_process: int
    pattern: str = "uniform"
    internal_rate: float = 0.5
    predicate_pids: tuple[Pid, ...] | None = None
    predicate_density: float = 0.1
    plant_final_cut: bool = False
    seed: int = 0
    mean_latency: float = 1.0

    def __post_init__(self) -> None:
        require(self.num_processes >= 2, "num_processes must be >= 2")
        require(self.sends_per_process >= 0, "sends_per_process must be >= 0")
        require(self.pattern in _PATTERNS, f"pattern must be one of {_PATTERNS}")
        require(0.0 <= self.internal_rate <= 1.0, "internal_rate must be in [0,1]")
        require(
            0.0 <= self.predicate_density <= 1.0,
            "predicate_density must be in [0,1]",
        )
        require(self.mean_latency > 0.0, "mean_latency must be positive")
        if self.predicate_pids is not None:
            pids = tuple(self.predicate_pids)
            require(len(pids) > 0, "predicate_pids must be non-empty when given")
            require(
                all(0 <= p < self.num_processes for p in pids),
                "predicate_pids out of range",
            )
            require(len(set(pids)) == len(pids), "predicate_pids must be unique")
            object.__setattr__(self, "predicate_pids", pids)

    @property
    def effective_predicate_pids(self) -> tuple[Pid, ...]:
        """The predicate process set (all processes when unspecified)."""
        if self.predicate_pids is None:
            return tuple(range(self.num_processes))
        return self.predicate_pids


@dataclass
class _ProcState:
    """Mutable per-process generation state."""

    remaining_sends: int
    local_time: float = 0.0
    events: list[Event] = field(default_factory=list)
    # Messages addressed to this process, not yet received:
    # (msg_id, sender, earliest_delivery_time)
    inbox: list[tuple[int, Pid, float]] = field(default_factory=list)


def generate(spec: WorkloadSpec) -> Computation:
    """Generate a computation according to ``spec``.

    The generator simulates the run action by action: at each step a
    random eligible process either receives a pending message or sends a
    new one, optionally preceded by an internal event that samples the
    predicate flag.  Receives always follow their sends in generation
    order, so the result is causally valid by construction.
    """
    rng = spawn_rng(spec.seed, "workload")
    n = spec.num_processes
    procs = [_ProcState(remaining_sends=spec.sends_per_process) for _ in range(n)]
    pred_set = set(spec.effective_predicate_pids)
    next_msg_id = 0

    def sample_flag(pid: Pid) -> dict[str, object] | None:
        if pid not in pred_set:
            return None
        return {FLAG_VAR: rng.random() < spec.predicate_density}

    def pick_destination(src: Pid) -> Pid:
        if spec.pattern == "ring":
            return (src + 1) % n
        if spec.pattern == "pairs":
            partner = src + 1 if src % 2 == 0 else src - 1
            return partner if partner < n else (src - 1 if src > 0 else 1)
        if spec.pattern == "client_server":
            servers = max(1, n // 4)
            if src < servers:  # server -> random client
                return rng.randrange(servers, n) if servers < n else (src + 1) % n
            return rng.randrange(servers)  # client -> random server
        # uniform
        dest = rng.randrange(n - 1)
        return dest if dest < src else dest + 1

    def advance_time(pid: Pid) -> float:
        procs[pid].local_time += rng.expovariate(1.0)
        return procs[pid].local_time

    while True:
        eligible = [
            pid
            for pid in range(n)
            if procs[pid].remaining_sends > 0 or procs[pid].inbox
        ]
        if not eligible:
            break
        pid = rng.choice(eligible)
        state = procs[pid]
        if rng.random() < spec.internal_rate:
            updates = sample_flag(pid)
            if updates is not None:
                state.events.append(Event.internal(updates, time=advance_time(pid)))
        can_recv = bool(state.inbox)
        can_send = state.remaining_sends > 0
        do_recv = can_recv and (not can_send or rng.random() < 0.5)
        if do_recv:
            slot = rng.randrange(len(state.inbox))  # non-FIFO channels
            msg_id, sender, delivery = state.inbox.pop(slot)
            time = max(advance_time(pid), delivery)
            state.local_time = time
            state.events.append(Event.recv(msg_id, sender, time=time))
        else:
            dest = pick_destination(pid)
            time = advance_time(pid)
            state.events.append(Event.send(next_msg_id, dest, time=time))
            delivery = time + rng.expovariate(1.0 / spec.mean_latency)
            procs[dest].inbox.append((next_msg_id, pid, delivery))
            state.remaining_sends -= 1
            next_msg_id += 1

    if spec.plant_final_cut:
        for pid in sorted(pred_set):
            procs[pid].events.append(
                Event.internal({FLAG_VAR: True}, time=advance_time(pid))
            )

    traces = [
        ProcessTrace(tuple(p.events), initial_vars={FLAG_VAR: False})
        for p in procs
    ]
    return Computation(traces)


# ----------------------------------------------------------------------
# Convenience constructors used throughout tests and benchmarks
# ----------------------------------------------------------------------
def random_computation(
    num_processes: int,
    sends_per_process: int,
    seed: int = 0,
    predicate_density: float = 0.1,
    pattern: str = "uniform",
    predicate_pids: tuple[Pid, ...] | None = None,
    plant_final_cut: bool = False,
) -> Computation:
    """A random computation with the given shape (see :class:`WorkloadSpec`)."""
    return generate(
        WorkloadSpec(
            num_processes=num_processes,
            sends_per_process=sends_per_process,
            seed=seed,
            predicate_density=predicate_density,
            pattern=pattern,
            predicate_pids=predicate_pids,
            plant_final_cut=plant_final_cut,
        )
    )


def worst_case_computation(
    num_processes: int,
    sends_per_process: int,
    seed: int = 0,
    predicate_pids: tuple[Pid, ...] | None = None,
    pattern: str = "uniform",
) -> Computation:
    """Predicate true only at the guaranteed final cut.

    Forces detection to eliminate (nearly) every earlier interval — the
    regime the paper's O-bounds describe.
    """
    return generate(
        WorkloadSpec(
            num_processes=num_processes,
            sends_per_process=sends_per_process,
            seed=seed,
            predicate_density=0.0,
            predicate_pids=predicate_pids,
            plant_final_cut=True,
            pattern=pattern,
        )
    )


def never_true_computation(
    num_processes: int,
    sends_per_process: int,
    seed: int = 0,
    predicate_pids: tuple[Pid, ...] | None = None,
) -> Computation:
    """The WCP never holds: detection must report "not detected"."""
    return generate(
        WorkloadSpec(
            num_processes=num_processes,
            sends_per_process=sends_per_process,
            seed=seed,
            predicate_density=0.0,
            predicate_pids=predicate_pids,
            plant_final_cut=False,
        )
    )


def ring_computation(
    num_processes: int,
    rounds: int,
    seed: int = 0,
    predicate_density: float = 0.0,
    plant_final_cut: bool = True,
) -> Computation:
    """A deterministic token-ring-shaped run: ``rounds`` full circulations.

    Every receive depends on the previous hop, producing a long causal
    chain — the structure that maximizes token travel in the §3
    algorithm.
    """
    require_positive(num_processes, "num_processes")
    require(num_processes >= 2, "ring needs >= 2 processes")
    require_positive(rounds, "rounds")
    return generate(
        WorkloadSpec(
            num_processes=num_processes,
            sends_per_process=rounds,
            pattern="ring",
            internal_rate=0.3,
            predicate_density=predicate_density,
            plant_final_cut=plant_final_cut,
            seed=seed,
        )
    )


def spiral_computation(num_processes: int, rounds: int) -> Computation:
    """The elimination worst case: a spiral of totally ordered candidates.

    A message circulates the ring ``rounds`` times; each hop's receiver
    raises the predicate flag in the interval the receive opens, then
    lowers it before forwarding.  Every such candidate is causally after
    the previous one, so *no* consistent satisfying cut exists among
    them — detection must eliminate all ``~n*rounds`` candidates one at
    a time before reaching the planted concurrent candidates at the very
    end.  This realizes the paper's upper-bound regime: token hops
    ``Θ(nm)`` with ``m = 2*rounds`` messages per process.
    """
    require(num_processes >= 2, "spiral needs >= 2 processes")
    require_positive(rounds, "rounds")
    from repro.trace.builder import ComputationBuilder

    builder = ComputationBuilder(
        num_processes,
        initial_vars={p: {FLAG_VAR: False} for p in range(num_processes)},
    )
    builder.internal(0, {FLAG_VAR: True})
    builder.internal(0, {FLAG_VAR: False})
    current = 0
    total_hops = rounds * num_processes
    msg = builder.send(0, 1)
    for hop in range(total_hops):
        nxt = (current + 1) % num_processes
        builder.recv(nxt, msg)
        builder.internal(nxt, {FLAG_VAR: True})
        builder.internal(nxt, {FLAG_VAR: False})
        if hop + 1 < total_hops:
            msg = builder.send(nxt, (nxt + 1) % num_processes)
        current = nxt
    for pid in range(num_processes):
        builder.internal(pid, {FLAG_VAR: True})
    return builder.build()


def skewed_concurrent_computation(
    num_predicate_processes: int,
    messages_per_process: int,
    slow_pid: Pid = 0,
    delay: float = 1000.0,
) -> Computation:
    """The buffering worst case: concurrent candidates, one slow stream.

    Each predicate process ``P_i`` (pids ``0..n-1``) ping-pongs with a
    private partner (pids ``n..2n-1``), creating ``~m`` candidate
    intervals whose flag is raised after a warm-up exchange.  Different
    pairs never communicate, so candidates are pairwise concurrent
    across processes — *nothing can be eliminated*.  Process
    ``slow_pid`` runs ``delay`` time units late, so any detector must
    buffer every other process's stream until the slow first candidate
    arrives.  This realizes the space bounds the paper compares:
    ``O(n^2 m)`` bits on the centralized checker versus ``O(nm)`` per
    monitor for the token algorithm (experiment E7).
    """
    require(num_predicate_processes >= 2, "need >= 2 predicate processes")
    require(messages_per_process >= 2, "need >= 2 messages per process")
    require(
        0 <= slow_pid < num_predicate_processes,
        "slow_pid must be a predicate process",
    )
    from repro.trace.builder import ComputationBuilder

    n = num_predicate_processes
    builder = ComputationBuilder(
        2 * n, initial_vars={p: {FLAG_VAR: False} for p in range(2 * n)}
    )
    exchanges = messages_per_process // 2
    for i in range(n):
        partner = n + i
        t = delay if i == slow_pid else 0.0

        def exchange(t0: float) -> float:
            ping = builder.send(i, partner, time=t0 + 1)
            builder.recv(partner, ping, time=t0 + 1.5)
            pong = builder.send(partner, i, time=t0 + 2)
            builder.recv(i, pong, time=t0 + 2.5)
            return t0 + 2.5

        t = exchange(t)
        builder.internal(i, {FLAG_VAR: True}, time=t + 0.5)
        t += 0.5
        for _ in range(exchanges - 1):
            t = exchange(t)
    return builder.build()


def empty_computation(num_processes: int) -> Computation:
    """A run with no events at all (one interval per process)."""
    if num_processes <= 0:
        raise ConfigurationError("num_processes must be positive")
    return Computation(
        [ProcessTrace((), initial_vars={FLAG_VAR: False})] * num_processes
    )
