"""Local snapshot extraction: what application processes send to monitors.

This module turns a recorded computation plus local predicates into the
exact snapshot streams the paper's two application-process algorithms
would emit:

* **Vector-clock snapshots** (Fig. 2): one snapshot per interval in which
  the local predicate holds, carrying the interval's vector clock.  The
  ``firstflag`` logic of Fig. 2 is what collapses "predicate became true"
  to once-per-interval.
* **Direct-dependence snapshots** (§4.1): one snapshot per predicate-true
  interval, carrying the scalar interval counter and the direct
  dependences accumulated since the *previous snapshot* (the paper's
  flush-on-snapshot rule).  Processes on which no local predicate is
  defined participate with the constant-true predicate — §4 requires all
  ``N`` processes to take part.

Emission points matter for the dependence slicing: a snapshot emitted at
the first predicate-true state of an interval carries exactly the
dependences of receives that precede that state and follow the previous
emission.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.clocks.dependence import Dependence
from repro.clocks.vector import PackedVectorClock, VectorClock
from repro.common.types import Pid
from repro.trace.computation import Computation

__all__ = [
    "VCSnapshot",
    "DDSnapshot",
    "GCPSnapshot",
    "true_intervals",
    "emission_points",
    "vc_snapshots",
    "dd_snapshots",
    "gcp_snapshots",
]

LocalStatePredicate = Callable[[Mapping[str, object]], bool]


@dataclass(frozen=True, slots=True)
class VCSnapshot:
    """A Fig. 2 local snapshot: the candidate interval's vector clock.

    ``vector`` is full width (``N``); detectors over a predicate subset
    project it.  ``state_index`` is the local state at which the snapshot
    was emitted (used for replay timing), ``time`` its optional timestamp.
    The vector's concrete class follows the ``clock_backend`` the stream
    was extracted with; both expose identical values and projections.
    """

    pid: Pid
    interval: int
    vector: VectorClock | PackedVectorClock
    state_index: int
    time: float | None = None


@dataclass(frozen=True, slots=True)
class DDSnapshot:
    """A §4.1 local snapshot: scalar clock plus flushed dependence list."""

    pid: Pid
    clock: int
    deps: tuple[Dependence, ...]
    state_index: int
    time: float | None = None


@dataclass(frozen=True, slots=True)
class GCPSnapshot:
    """A GCP local snapshot: vector clock plus channel counters.

    ``sends[d]`` counts this process's messages to ``d`` sent strictly
    before the candidate interval (their sends closed earlier
    intervals); ``recvs[s]`` counts messages from ``s`` received at or
    before it (their receives opened intervals ``<= interval``).  These
    are exactly the quantities whose difference is the in-transit count
    at a cut, matching :func:`repro.predicates.channel.in_transit_messages`.
    Only the channels a detector asks for are carried.
    """

    pid: Pid
    interval: int
    vector: VectorClock | PackedVectorClock
    sends: Mapping[Pid, int]
    recvs: Mapping[Pid, int]
    state_index: int
    time: float | None = None


def _always_true(_state: Mapping[str, object]) -> bool:
    return True


def emission_points(
    computation: Computation,
    pid: Pid,
    predicate: LocalStatePredicate,
    clock_backend: str = "list",
) -> list[tuple[int, int]]:
    """Snapshot emission points for ``pid``: ``(interval, state_index)``.

    One entry per interval in which ``predicate`` holds at some local
    state, at the first such state — exactly Fig. 2's ``firstflag``
    behaviour (the flag is set by every send/receive, i.e. at every
    interval boundary, and cleared on the first true evaluation).

    ``clock_backend`` only picks which cached analysis to reuse — the
    emission points themselves are backend-independent — so callers that
    extract packed snapshot streams never build the list analysis too.
    """
    analysis = computation.analysis(clock_backend)
    states = computation.local_states(pid)
    points: list[tuple[int, int]] = []
    last_emitted_interval = 0
    for state_index, state in enumerate(states):
        interval = analysis.interval_of_state(pid, state_index)
        if interval == last_emitted_interval:
            continue
        if predicate(state):
            points.append((interval, state_index))
            last_emitted_interval = interval
    return points


def true_intervals(
    computation: Computation,
    pid: Pid,
    predicate: LocalStatePredicate,
    clock_backend: str = "list",
) -> list[int]:
    """The intervals of ``pid`` in which ``predicate`` holds somewhere."""
    return [
        interval
        for interval, _ in emission_points(
            computation, pid, predicate, clock_backend
        )
    ]


def _event_time(computation: Computation, pid: Pid, state_index: int) -> float | None:
    """Timestamp of the event that produced local state ``state_index``."""
    if state_index == 0:
        return 0.0
    return computation.event(pid, state_index - 1).time


def vc_snapshots(
    computation: Computation,
    predicates: Mapping[Pid, LocalStatePredicate],
    clock_backend: str = "list",
) -> dict[Pid, list[VCSnapshot]]:
    """Vector-clock snapshot streams for every predicate process.

    Returns a FIFO-ordered list per pid in ``predicates``.
    """
    analysis = computation.analysis(clock_backend)
    streams: dict[Pid, list[VCSnapshot]] = {}
    for pid, predicate in predicates.items():
        stream: list[VCSnapshot] = []
        for interval, state_index in emission_points(
            computation, pid, predicate, clock_backend
        ):
            stream.append(
                VCSnapshot(
                    pid=pid,
                    interval=interval,
                    vector=analysis.vector(pid, interval),
                    state_index=state_index,
                    time=_event_time(computation, pid, state_index),
                )
            )
        streams[pid] = stream
    return streams


def gcp_snapshots(
    computation: Computation,
    predicates: Mapping[Pid, LocalStatePredicate],
    channels: Sequence[tuple[Pid, Pid]],
    clock_backend: str = "list",
) -> dict[Pid, list[GCPSnapshot]]:
    """Snapshot streams carrying channel counters for GCP detection.

    ``channels`` lists the directed ``(src, dest)`` pairs the detector's
    channel clauses mention; each predicate process's snapshots carry
    its cumulative send counters for channels it sources and receive
    counters for channels it terminates.
    """
    analysis = computation.analysis(clock_backend)
    from repro.trace.events import EventKind

    out_channels: dict[Pid, list[Pid]] = {}
    in_channels: dict[Pid, list[Pid]] = {}
    for src, dest in channels:
        out_channels.setdefault(src, []).append(dest)
        in_channels.setdefault(dest, []).append(src)

    streams: dict[Pid, list[GCPSnapshot]] = {}
    for pid, predicate in predicates.items():
        events = computation.events_of(pid)
        # Per interval: sends with tag < interval, recvs opening <= interval.
        max_interval = analysis.num_intervals(pid)
        send_counts = {d: [0] * (max_interval + 2) for d in out_channels.get(pid, [])}
        recv_counts = {s: [0] * (max_interval + 2) for s in in_channels.get(pid, [])}
        for idx, event in enumerate(events):
            if event.kind is EventKind.SEND and event.peer in send_counts:
                tag = analysis.send_tag(event.msg_id)
                # Visible to cuts with component > tag.
                for interval in range(tag + 1, max_interval + 1):
                    send_counts[event.peer][interval] += 1
            elif event.kind is EventKind.RECV and event.peer in recv_counts:
                opened = analysis.interval_of_state(pid, idx + 1)
                for interval in range(opened, max_interval + 1):
                    recv_counts[event.peer][interval] += 1
        stream: list[GCPSnapshot] = []
        for interval, state_index in emission_points(
            computation, pid, predicate, clock_backend
        ):
            stream.append(
                GCPSnapshot(
                    pid=pid,
                    interval=interval,
                    vector=analysis.vector(pid, interval),
                    sends={d: counts[interval] for d, counts in send_counts.items()},
                    recvs={s: counts[interval] for s, counts in recv_counts.items()},
                    state_index=state_index,
                    time=_event_time(computation, pid, state_index),
                )
            )
        streams[pid] = stream
    return streams


def dd_snapshots(
    computation: Computation,
    predicates: Mapping[Pid, LocalStatePredicate],
    clock_backend: str = "list",
) -> dict[Pid, list[DDSnapshot]]:
    """Direct-dependence snapshot streams for **all** ``N`` processes.

    Processes not named in ``predicates`` use the constant-true predicate
    (they emit one snapshot per interval), since §4 requires every
    process in the system to participate.

    The dependence list flushed into each snapshot contains the receives
    strictly before the snapshot's emission state and at/after the
    previous snapshot's emission state, in receive order.
    """
    streams: dict[Pid, list[DDSnapshot]] = {}
    analysis = computation.analysis(clock_backend)
    for pid in range(computation.num_processes):
        predicate = predicates.get(pid, _always_true)
        deps = analysis.receive_dependences(pid)  # (recv_event_index, dep)
        stream: list[DDSnapshot] = []
        dep_pos = 0
        for interval, state_index in emission_points(
            computation, pid, predicate, clock_backend
        ):
            flushed: list[Dependence] = []
            # A receive at event index r produces local state r+1; its
            # dependence is visible to snapshots emitted at state > r,
            # i.e. state_index >= r + 1.
            while dep_pos < len(deps) and deps[dep_pos][0] < state_index:
                flushed.append(deps[dep_pos][1])
                dep_pos += 1
            stream.append(
                DDSnapshot(
                    pid=pid,
                    clock=interval,
                    deps=tuple(flushed),
                    state_index=state_index,
                    time=_event_time(computation, pid, state_index),
                )
            )
        streams[pid] = stream
    return streams
