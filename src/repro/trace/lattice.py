"""Enumeration of the lattice of consistent global states.

Cooper and Marzullo's detector [3] — a baseline the paper compares its
approach against — searches the lattice of consistent global states
level by level.  This module provides the lattice machinery at the
library's interval granularity:

* a consistent global state is a :class:`~repro.trace.cuts.Cut` whose
  interval states are pairwise concurrent;
* the level of a state is the sum of its components;
* every consistent state of level L+1 covers (one-component increment)
  at least one consistent state of level L, so breadth-first search by
  level enumerates the whole lattice exactly once.

The lattice is exponential in general; these functions are intended for
baselines and for validating the polynomial algorithms on small runs.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.common.types import Pid, StateRef
from repro.trace.cuts import Cut
from repro.trace.intervals import IntervalAnalysis

__all__ = [
    "initial_cut",
    "consistent_successors",
    "iter_consistent_cuts",
    "count_consistent_cuts",
]


def initial_cut(analysis: IntervalAnalysis, pids: Sequence[Pid]) -> Cut:
    """The bottom of the lattice: every process at interval 1.

    Always consistent: interval 1 of any process precedes every merge,
    so no cross-process happened-before edge can point into it.
    """
    pids = tuple(pids)
    return Cut(pids, (1,) * len(pids))


def _increment_ok(analysis: IntervalAnalysis, cut: Cut, k: int) -> Cut | None:
    """The cut with component ``k`` incremented, or None if that leaves
    the trace or breaks consistency."""
    pid = cut.pids[k]
    new_interval = cut.intervals[k] + 1
    if new_interval > analysis.num_intervals(pid):
        return None
    moved = StateRef(pid, new_interval)
    for j, other_pid in enumerate(cut.pids):
        if j == k:
            continue
        other = StateRef(other_pid, cut.intervals[j])
        if analysis.happened_before(moved, other) or analysis.happened_before(
            other, moved
        ):
            return None
    return cut.replaced(pid, new_interval)


def consistent_successors(analysis: IntervalAnalysis, cut: Cut) -> list[Cut]:
    """All consistent cuts reachable from ``cut`` by one increment."""
    out: list[Cut] = []
    for k in range(len(cut.pids)):
        succ = _increment_ok(analysis, cut, k)
        if succ is not None:
            out.append(succ)
    return out


def iter_consistent_cuts(
    analysis: IntervalAnalysis, pids: Sequence[Pid]
) -> Iterator[Cut]:
    """Breadth-first enumeration (by level) of every consistent cut.

    Each cut is yielded exactly once; within a level the order is
    deterministic (insertion order of the BFS frontier).
    """
    start = initial_cut(analysis, pids)
    frontier: dict[tuple[int, ...], Cut] = {start.intervals: start}
    while frontier:
        next_frontier: dict[tuple[int, ...], Cut] = {}
        for cut in frontier.values():
            yield cut
            for succ in consistent_successors(analysis, cut):
                next_frontier.setdefault(succ.intervals, succ)
        frontier = next_frontier


def count_consistent_cuts(analysis: IntervalAnalysis, pids: Sequence[Pid]) -> int:
    """The number of consistent global states over ``pids``."""
    return sum(1 for _ in iter_consistent_cuts(analysis, pids))
