"""The lattice of consistent global states at *local-state* granularity.

The detection algorithms work at communication-interval granularity,
which is exact for ``possibly(φ)`` (the Garg–Waldecker WCP theorem).
``definitely(φ)`` — every observation passes through a φ-state — is a
statement about individual local states, so its ground truth needs the
finer lattice: a global state is a vector ``(t_1..t_N)`` where process
``i`` has executed its first ``t_i`` events (and so sits in local state
``s_{t_i}``), consistent iff no message is received but unsent:

    for all i != j:  C_j(t_j)[i] <= t_i

where ``C_j(u)[i]`` is the number of ``i``-events in the causal past of
``j``'s ``u``-th event (0 for ``u = 0``) — directly readable off the
event-level Fidge–Mattern clocks.

This module provides exhaustive (exponential) evaluators used as ground
truth for the polynomial strong-predicate detector
(:mod:`repro.detect.strong`) and for cross-granularity sanity checks.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.predicates.conjunctive import WeakConjunctivePredicate
from repro.trace.causality import event_vector_clocks
from repro.trace.computation import Computation

__all__ = [
    "StateLatticeAnalysis",
    "possibly_states",
    "definitely_states",
]

LocalStatePredicate = Callable[[Mapping[str, object]], bool]


class StateLatticeAnalysis:
    """Cached machinery for state-granularity cut queries."""

    def __init__(self, computation: Computation) -> None:
        self._comp = computation
        self._n = computation.num_processes
        self._lengths = [
            len(computation.events_of(pid)) for pid in range(self._n)
        ]
        clocks = event_vector_clocks(computation)
        # past[j][u][i] = i-events in the causal past of j's u-th prefix.
        self._past: list[list[tuple[int, ...]]] = []
        for j in range(self._n):
            rows: list[tuple[int, ...]] = [tuple([0] * self._n)]
            for u in range(1, self._lengths[j] + 1):
                rows.append(clocks[j][u - 1].components)
            self._past.append(rows)

    @property
    def num_processes(self) -> int:
        """The process count N."""
        return self._n

    def lengths(self) -> tuple[int, ...]:
        """Event counts per process (the top cut)."""
        return tuple(self._lengths)

    def is_consistent(self, cut: tuple[int, ...]) -> bool:
        """Whether prefix-vector ``cut`` is a consistent global state."""
        for j in range(self._n):
            past = self._past[j][cut[j]]
            for i in range(self._n):
                if i != j and past[i] > cut[i]:
                    return False
        return True

    def successors(self, cut: tuple[int, ...]) -> list[tuple[int, ...]]:
        """Consistent one-event advances of ``cut``."""
        out = []
        for i in range(self._n):
            if cut[i] < self._lengths[i]:
                nxt = cut[:i] + (cut[i] + 1,) + cut[i + 1 :]
                if self.is_consistent(nxt):
                    out.append(nxt)
        return out


def _clause_values(
    computation: Computation, wcp: WeakConjunctivePredicate
) -> dict[int, list[bool]]:
    values: dict[int, list[bool]] = {}
    for pid in wcp.pids:
        clause = wcp.clause(pid)
        values[pid] = [clause(s) for s in computation.local_states(pid)]
    return values


def possibly_states(
    computation: Computation, wcp: WeakConjunctivePredicate
) -> bool:
    """Exhaustive possibly(φ) at state granularity.

    Must agree with interval-granularity detection — the WCP theorem —
    which the test suite asserts.
    """
    wcp.check_against(computation.num_processes)
    analysis = StateLatticeAnalysis(computation)
    values = _clause_values(computation, wcp)

    def satisfies(cut: tuple[int, ...]) -> bool:
        return all(values[pid][cut[pid]] for pid in wcp.pids)

    start = tuple([0] * analysis.num_processes)
    frontier = {start}
    seen = {start}
    while frontier:
        for cut in frontier:
            if satisfies(cut):
                return True
        next_frontier = set()
        for cut in frontier:
            for succ in analysis.successors(cut):
                if succ not in seen:
                    seen.add(succ)
                    next_frontier.add(succ)
        frontier = next_frontier
    return False


def definitely_states(
    computation: Computation, wcp: WeakConjunctivePredicate
) -> bool:
    """Exhaustive definitely(φ): no observation avoids every φ-state.

    Searches for a path of non-satisfying consistent states from the
    initial to the final global state; definitely holds iff none exists.
    Exponential — ground truth for :mod:`repro.detect.strong`.
    """
    wcp.check_against(computation.num_processes)
    analysis = StateLatticeAnalysis(computation)
    values = _clause_values(computation, wcp)

    def satisfies(cut: tuple[int, ...]) -> bool:
        return all(values[pid][cut[pid]] for pid in wcp.pids)

    start = tuple([0] * analysis.num_processes)
    top = analysis.lengths()
    if satisfies(start):
        return True
    if start == top:
        return False
    frontier = {start}
    seen = {start}
    while frontier:
        next_frontier = set()
        for cut in frontier:
            for succ in analysis.successors(cut):
                if succ in seen or satisfies(succ):
                    continue
                if succ == top:
                    return False
                seen.add(succ)
                next_frontier.add(succ)
        frontier = next_frontier
    return True
