#!/usr/bin/env python
"""Enforce the three-layer protocol-stack import discipline.

Detection cores (``src/repro/detect/*.py``) must stay near-verbatim
paper pseudocode: they may depend on the stack only through its facade
(:mod:`repro.detect.stack`), never on the layer internals, the
deprecated shims, or the fault-injection machinery.  Concretely, a
core module must not import:

* ``repro.simulation.faults``      — fault plans are a kernel concern;
  cores receive them opaquely (``if TYPE_CHECKING:`` imports are fine,
  they vanish at runtime);
* ``repro.detect.stack.transport`` / ``.membership`` / ``.compose`` —
  layer internals; the facade re-exports everything a core may touch.

The multi-predicate service package (``detect/service/``) is scanned
too: its registry is subject to the same rule, while ``dispatcher`` is
stack glue by design (it composes a :class:`StackGlue`) and is exempt
alongside ``__init__``/``runner``.  The old ``reliability`` /
``failuredetect`` back-compat shims are gone; importing them is now an
``ImportError``, not a layering question.

Exit status 1 with a per-violation report, 0 when clean.  Run directly
or via ``tests/test_layering.py`` (tier-1) and the CI lint job.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DETECT = REPO / "src" / "repro" / "detect"

#: Modules whose *job* is to violate the rule (registry / stack glue).
EXEMPT = {"runner", "dispatcher", "__init__"}

FORBIDDEN_PREFIXES = (
    "repro.simulation.faults",
    "repro.detect.stack.transport",
    "repro.detect.stack.membership",
    "repro.detect.stack.gossip",
    "repro.detect.stack.compose",
)


def _is_forbidden(module: str) -> bool:
    return any(
        module == p or module.startswith(p + ".") for p in FORBIDDEN_PREFIXES
    )


class _ImportVisitor(ast.NodeVisitor):
    """Collect forbidden imports, skipping ``if TYPE_CHECKING:`` bodies."""

    def __init__(self) -> None:
        self.violations: list[tuple[int, str]] = []

    def visit_If(self, node: ast.If) -> None:
        test = node.test
        is_type_checking = (
            isinstance(test, ast.Name) and test.id == "TYPE_CHECKING"
        ) or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )
        if is_type_checking:
            for stmt in node.orelse:
                self.visit(stmt)
            return
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if _is_forbidden(alias.name):
                self.violations.append((node.lineno, alias.name))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0 and _is_forbidden(node.module):
            self.violations.append((node.lineno, node.module))


def check_file(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    visitor = _ImportVisitor()
    visitor.visit(tree)
    rel = path.relative_to(REPO)
    return [
        f"{rel}:{line}: detection core imports {module!r}; "
        f"use the repro.detect.stack facade"
        for line, module in visitor.violations
    ]


def core_modules() -> list[Path]:
    candidates = list(DETECT.glob("*.py")) + list(DETECT.glob("service/*.py"))
    return sorted(p for p in candidates if p.stem not in EXEMPT)


def main() -> int:
    problems: list[str] = []
    for path in core_modules():
        problems.extend(check_file(path))
    if problems:
        print("layering violations:", file=sys.stderr)
        for line in problems:
            print(f"  {line}", file=sys.stderr)
        return 1
    count = len(core_modules())
    print(f"layering OK: {count} detection-core modules checked")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
