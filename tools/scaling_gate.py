#!/usr/bin/env python
"""Multi-worker sweep scaling gate for CI.

Proves — on a runner that actually has the cores — that the sweep
harness's process fan-out delivers real speedup, and that paper units
are byte-identical no matter how many workers computed them:

1. warm the workload cache (untimed), so both timed runs measure
   detection, not trace generation;
2. run the matrix at ``--workers 1`` and at ``--workers N`` and time
   both;
3. assert the two runs' per-cell paper units are byte-identical;
4. assert they match the committed baseline exactly (no drift);
5. assert wall speedup ``serial / fanned >= --min-speedup``.

The gate **hard-fails when the runner has fewer CPUs than the fanned
worker count** — a 1-core box cannot prove a 4-worker speedup, and
skipping would silently reinstate the stale "measured at cpu_count=1"
baseline this tool exists to kill.  Recording a new baseline with
``--record`` is allowed anywhere; the written document carries an
``environment`` block (real ``cpu_count``, worker counts, measured
speedup) so a reader can tell exactly what hardware produced it.

Usage::

    python tools/scaling_gate.py --matrix benchmarks/sweeps/scaling64.json \
        --baseline benchmarks/baselines/scaling64.json --min-speedup 2.5
    python tools/scaling_gate.py --matrix ... --baseline ... --record
"""

import argparse
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.sweep import load_baseline, load_matrix, run_sweep  # noqa: E402
from repro.sweep.baseline import cell_units  # noqa: E402


def _units_dump(view: dict) -> str:
    return json.dumps(view, sort_keys=True)


def _diff_units(expected: dict, actual: dict, label: str) -> list[str]:
    lines = []
    for cell_id in sorted(set(expected) | set(actual)):
        exp, act = expected.get(cell_id), actual.get(cell_id)
        if exp != act:
            lines.append(f"  {label} {cell_id}: baseline={exp} fresh={act}")
    return lines


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--matrix", type=pathlib.Path, required=True)
    parser.add_argument("--baseline", type=pathlib.Path, required=True)
    parser.add_argument("--workers", type=int, default=4,
                        help="fanned worker count (default 4)")
    parser.add_argument("--min-speedup", type=float, default=2.5,
                        help="required serial/fanned wall ratio (default 2.5)")
    parser.add_argument("--cache-dir", type=pathlib.Path, default=None)
    parser.add_argument("--summary-out", type=pathlib.Path, default=None,
                        metavar="FILE",
                        help="append a markdown summary (e.g. "
                             "$GITHUB_STEP_SUMMARY)")
    parser.add_argument("--record", action="store_true",
                        help="rewrite the baseline from the fanned run "
                             "(with honest environment metadata) instead "
                             "of gating")
    args = parser.parse_args()

    cpus = os.cpu_count() or 1
    if not args.record and cpus < args.workers:
        print(
            f"error: runner has {cpus} CPU(s) but the gate needs "
            f">= {args.workers} to prove a {args.workers}-worker speedup; "
            f"failing instead of skipping (see tools/scaling_gate.py)",
            file=sys.stderr,
        )
        return 2

    matrix = load_matrix(args.matrix)
    if args.cache_dir is not None:
        cache_root = args.cache_dir
    else:
        from repro.sweep import default_cache_root

        cache_root = default_cache_root()
    print(
        f"matrix {matrix.name}: {matrix.num_cells} cells; "
        f"cpu_count={cpus}; workers 1 vs {args.workers}"
    )

    warm = run_sweep(matrix, cache_root, workers=1)
    if not warm.ok:
        for error in warm.errors:
            print(f"error: cell {error['id']}: {error['error']}",
                  file=sys.stderr)
        return 3

    started = time.perf_counter()
    serial = run_sweep(matrix, cache_root, workers=1)
    serial_s = time.perf_counter() - started
    started = time.perf_counter()
    fanned = run_sweep(matrix, cache_root, workers=args.workers)
    fanned_s = time.perf_counter() - started
    if not (serial.ok and fanned.ok):
        return 3

    speedup = serial_s / fanned_s if fanned_s > 0 else float("inf")
    print(f"serial:  {serial_s:7.3f}s  ({len(serial.records)} cells)")
    print(f"fanned:  {fanned_s:7.3f}s  (workers={args.workers})")
    print(f"speedup: {speedup:.2f}x  (gate: >= {args.min_speedup:.1f}x)")

    identical = _units_dump(serial.paper_units_view()) == _units_dump(
        fanned.paper_units_view()
    )
    if not identical:
        print("error: paper units depend on worker count", file=sys.stderr)
        print(
            "\n".join(
                _diff_units(
                    serial.paper_units_view(),
                    fanned.paper_units_view(),
                    "workers",
                )
            ),
            file=sys.stderr,
        )
        return 1

    if args.summary_out is not None:
        with args.summary_out.open("a", encoding="utf-8") as fh:
            fh.write(
                f"### scaling gate: {matrix.name}\n\n"
                f"| workers | wall (s) | speedup |\n|---|---|---|\n"
                f"| 1 | {serial_s:.3f} | 1.00x |\n"
                f"| {args.workers} | {fanned_s:.3f} | {speedup:.2f}x |\n\n"
                f"cpu_count={cpus}; units identical across worker counts; "
                f"gate >= {args.min_speedup:.1f}x\n\n"
            )

    if args.record:
        doc = fanned.aggregate()
        doc["environment"] = {
            "cpu_count": cpus,
            "serial_workers": 1,
            "fanned_workers": args.workers,
            "serial_wall_s": round(serial_s, 3),
            "fanned_wall_s": round(fanned_s, 3),
            "measured_speedup": round(speedup, 2),
        }
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(
            json.dumps(doc, indent=2, default=str) + "\n", encoding="utf-8"
        )
        print(f"recorded {args.baseline} (cpu_count={cpus})")
        return 0

    baseline_units = cell_units(
        load_baseline(args.baseline), str(args.baseline)
    )
    fresh_units = serial.paper_units_view()
    if baseline_units != fresh_units:
        print(
            f"error: paper units diverge from {args.baseline}",
            file=sys.stderr,
        )
        print(
            "\n".join(_diff_units(baseline_units, fresh_units, "cell")),
            file=sys.stderr,
        )
        return 1
    print(f"paper units match {args.baseline} ({len(fresh_units)} cells)")

    if speedup < args.min_speedup:
        print(
            f"error: speedup {speedup:.2f}x below the "
            f"{args.min_speedup:.1f}x gate on a {cpus}-CPU runner",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
